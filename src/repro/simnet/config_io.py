"""JSON (de)serialization for scenario configurations.

Scenario configs are plain dataclasses; persisting them lets runs be
reproduced exactly from an artefact (`repro-cli simulate --config x.json`)
and lets users version their tuned scenarios.
"""

from __future__ import annotations

import dataclasses
import json
from typing import IO, Any, Dict, Tuple

from repro.simnet.config import (
    FarmSpec,
    FleetSpec,
    GfwEraConfig,
    ScenarioConfig,
)


def config_to_dict(config: ScenarioConfig) -> Dict[str, Any]:
    """A JSON-serializable dict (nested dataclasses become dicts)."""
    raw = dataclasses.asdict(config)
    # JSON objects key by strings; mark int-keyed mappings for round-trip
    raw["responsive_org_shares"] = {
        str(asn): share for asn, share in config.responsive_org_shares.items()
    }
    return raw


def _canonical_order(mapping: Dict[Any, Any], reference: Dict[Any, Any]) -> Dict[Any, Any]:
    """Restore a dict field's canonical insertion order after a round-trip.

    JSON serialization sorts object keys, but the world builders iterate
    these dicts and consume rng draws per entry — so a loaded config must
    iterate in the same order as the in-code presets or the same config
    builds a (slightly) different world.  Known keys take the default
    declaration order; unknown extras follow, sorted, so the result is a
    pure function of the dict's *content*, never of the file's key order.
    """
    ordered = {key: mapping[key] for key in reference if key in mapping}
    for key in sorted(set(mapping) - set(reference), key=str):
        ordered[key] = mapping[key]
    return ordered


def _build_specs(cls: type, entries: Any, section: str) -> Tuple[Any, ...]:
    """Construct nested spec dataclasses with located error reporting.

    An unknown, missing or mistyped key raises :class:`ValueError` naming
    the section and entry index (``farms[3]: unknown field(s) ['asnn']``)
    instead of the bare :class:`TypeError` ``cls(**entry)`` would leak —
    scenario files are hand-edited, so errors must point at the entry.
    """
    field_names = {field.name for field in dataclasses.fields(cls)}
    specs = []
    for index, entry in enumerate(entries):
        where = f"{section}[{index}]"
        if not isinstance(entry, dict):
            raise ValueError(
                f"{where}: expected a mapping of {cls.__name__} fields, "
                f"got {type(entry).__name__}"
            )
        unknown = set(entry) - field_names
        if unknown:
            raise ValueError(
                f"{where}: unknown field(s) {sorted(unknown)}; "
                f"{cls.__name__} fields are {sorted(field_names)}"
            )
        try:
            specs.append(cls(**entry))
        except TypeError as error:
            raise ValueError(f"{where}: {error}") from None
    return tuple(specs)


def config_from_dict(data: Dict[str, Any]) -> ScenarioConfig:
    """Rebuild a :class:`ScenarioConfig` from :func:`config_to_dict` output.

    Also accepts an expanded-scenario artifact document (the wrapper
    written by ``repro-cli scenario expand``): the embedded ``config``
    section is used and the rest of the wrapper ignored, so plain
    ``--config expanded.json`` reproduces the scenario's world.
    """
    if (
        isinstance(data.get("provenance"), dict)
        and str(data["provenance"].get("format", "")).startswith(
            "repro-scenario-expanded/"
        )
        and isinstance(data.get("config"), dict)
    ):
        data = data["config"]
    payload = dict(data)
    payload["farms"] = _build_specs(FarmSpec, payload.get("farms", ()), "farms")
    payload["fleets"] = _build_specs(
        FleetSpec, payload.get("fleets", ()), "fleets"
    )
    payload["gfw_eras"] = _build_specs(
        GfwEraConfig, payload.get("gfw_eras", ()), "gfw_eras"
    )
    payload["gfw_as_shares"] = tuple(
        (int(asn), float(share)) for asn, share in payload.get("gfw_as_shares", ())
    )
    payload["blocked_domains"] = tuple(payload.get("blocked_domains", ()))
    payload["responsive_org_shares"] = _canonical_order(
        {
            int(asn): float(share)
            for asn, share in payload.get("responsive_org_shares", {}).items()
        },
        ScenarioConfig().responsive_org_shares,
    )
    payload["top_list_aliased_rates"] = _canonical_order(
        {
            str(name): float(rate)
            for name, rate in payload.get("top_list_aliased_rates", {}).items()
        },
        ScenarioConfig().top_list_aliased_rates,
    )
    payload["dns_behavior_weights"] = _canonical_order(
        {
            str(name): float(weight)
            for name, weight in payload.get("dns_behavior_weights", {}).items()
        },
        ScenarioConfig().dns_behavior_weights,
    )
    field_names = {field.name for field in dataclasses.fields(ScenarioConfig)}
    unknown = set(payload) - field_names
    if unknown:
        raise ValueError(f"unknown config fields: {sorted(unknown)}")
    return ScenarioConfig(**payload)


def save_config(config: ScenarioConfig, stream: IO[str]) -> None:
    """Write a config as pretty-printed JSON."""
    json.dump(config_to_dict(config), stream, indent=2, sort_keys=True)
    stream.write("\n")


def load_config(stream: IO[str]) -> ScenarioConfig:
    """Read a config written by :func:`save_config`."""
    return config_from_dict(json.load(stream))
