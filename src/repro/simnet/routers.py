"""Traceroute topology: transit routers, core routers, rotating CPE fleets.

Traceroutes (the service's own Yarrp runs plus RIPE-Atlas-style external
measurements) are the paper's dominant input source and the origin of two
of its findings: the accumulation of rotating EUI-64 CPE addresses from
ISPs like ANTEL and DTAG (Sec. 4.1) and the discovery of ephemeral
Chinese last-hop addresses that trigger GFW injection (Sec. 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro._util import mix64
from repro.net.eui64 import eui64_interface_id
from repro.net.prefix import IPv6Prefix

_LOW64 = (1 << 64) - 1


@dataclass(frozen=True)
class CpeFleet:
    """A fleet of customer-premises devices behind one ISP.

    Each device owns a MAC address (``oui << 24 | device_index`` plus a
    fleet-specific base); the ISP assigns each device a /64 out of
    ``pool`` and rotates that assignment every ``rotation_period`` days.
    Devices with ``eui64_iids`` derive their interface ID from the MAC
    (trackable across rotations, as Rye et al. showed); otherwise the IID
    is randomized per rotation.

    ``shared_mac_devices`` devices at the low end of the index range all
    share the vendor's default MAC — reproducing the paper's top EUI-64
    value that appeared in 240 k distinct addresses within one /32.
    """

    fleet_id: int
    asn: int
    pool: IPv6Prefix
    device_count: int
    oui: int
    vendor: str
    eui64_iids: bool = True
    rotation_period: int = 14
    daily_observations: int = 10
    shared_mac_devices: int = 0
    #: fraction of devices answering ICMP at their current address.  Their
    #: rotating-but-briefly-responsive addresses drive the paper's huge
    #: cumulative responsive count (45.3 M ever vs. 3.1 M at once) and the
    #: per-scan churn of Fig. 4.
    responsive_share: float = 0.0
    #: how many distinct rotating last-hop interfaces traceroutes into
    #: this AS can reveal per rotation epoch (aggregation-router bound).
    trace_groups: int = 16

    def __post_init__(self) -> None:
        if self.pool.length > 64:
            raise ValueError("CPE pool must be /64 or shorter")
        if self.device_count < 1:
            raise ValueError("fleet needs at least one device")

    def mac_of(self, device: int) -> int:
        """The MAC address of one device (shared-default devices collide).

        Serials encode (fleet, device) so distinct devices never alias a
        MAC by accident — only the vendor-default subfleet shares one.
        """
        if device < self.shared_mac_devices:
            serial = 0  # vendor default MAC, never provisioned properly
        else:
            serial = ((self.fleet_id << 16) | (device & 0xFFFF)) & 0xFFFFFF
            serial = serial or 1
        return (self.oui << 24) | serial

    def network_of(self, device: int, day: int) -> int:
        """The /64 network assigned to a device during ``day``'s epoch."""
        epoch = day // self.rotation_period
        subnet_bits = 64 - self.pool.length
        slot = mix64(mix64(self.fleet_id ^ device) ^ epoch) & ((1 << subnet_bits) - 1)
        return self.pool.value | (slot << 64)

    def address_of(self, device: int, day: int) -> int:
        """The WAN address a traceroute would capture for a device."""
        network = self.network_of(device, day)
        if self.eui64_iids:
            iid = eui64_interface_id(self.mac_of(device))
        else:
            epoch = day // self.rotation_period
            iid = mix64(mix64(self.fleet_id ^ device ^ 0xC0FFEE) ^ epoch) & _LOW64
        return network | iid

    def device_responds(self, device: int) -> bool:
        """True for the stable subset of devices that answer pings."""
        if self.responsive_share <= 0.0:
            return False
        draw = mix64(mix64(self.fleet_id ^ 0x9E3779B9) ^ device)
        return draw < int(self.responsive_share * float(1 << 64))

    def responsive_addresses(self, day: int) -> List[int]:
        """Current addresses of all ping-answering devices."""
        return [
            self.address_of(device, day)
            for device in range(self.device_count)
            if self.device_responds(device)
        ]

    def observed_devices(self, day: int) -> List[int]:
        """Devices visible to measurement platforms on ``day``."""
        count = min(self.daily_observations, self.device_count)
        salt = mix64(self.fleet_id ^ 0xA71A5)
        # combine (day, index) injectively: day ^ index would collide
        # across days and starve the discovery rate
        return [
            mix64(salt ^ (day * 1024 + index)) % self.device_count
            for index in range(count)
        ]


class RouterTopology:
    """Answers "what hops does a traceroute to X reveal on day D?"."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._transit_routers: List[int] = []
        self._core_routers: Dict[int, List[int]] = {}
        self._fleets_by_asn: Dict[int, List[CpeFleet]] = {}
        self._fleets: List[CpeFleet] = []

    def add_transit_router(self, address: int) -> None:
        """Register a backbone router visible on many paths."""
        self._transit_routers.append(address)

    def add_core_router(self, asn: int, address: int) -> None:
        """Register a stable core router inside an AS."""
        self._core_routers.setdefault(asn, []).append(address)

    def add_fleet(self, fleet: CpeFleet) -> None:
        """Register a CPE fleet (its addresses appear as last hops)."""
        self._fleets_by_asn.setdefault(fleet.asn, []).append(fleet)
        self._fleets.append(fleet)

    @property
    def fleets(self) -> Tuple[CpeFleet, ...]:
        """All registered fleets."""
        return tuple(self._fleets)

    def fleets_of(self, asn: int) -> Tuple[CpeFleet, ...]:
        """Fleets homed in one AS."""
        return tuple(self._fleets_by_asn.get(asn, ()))

    def core_routers_of(self, asn: int) -> Tuple[int, ...]:
        """Stable core routers of one AS."""
        return tuple(self._core_routers.get(asn, ()))

    def trace(self, target: int, target_asn: Optional[int], day: int) -> List[int]:
        """Hop addresses revealed by one traceroute towards ``target``.

        The path is synthetic but stable for a (target /48, day epoch):
        two transit hops, up to two destination-AS core routers, and —
        for ASes operating CPE fleets — one rotating last-hop CPE
        address.  The target itself is never included (whether it answers
        is the scanner's business).
        """
        hops: List[int] = []
        route_key = mix64((target >> 80) ^ mix64(self._seed))
        if self._transit_routers:
            for index in range(2):
                pick = mix64(route_key ^ index) % len(self._transit_routers)
                hops.append(self._transit_routers[pick])
        if target_asn is not None:
            core = self._core_routers.get(target_asn)
            if core:
                hops.append(core[route_key % len(core)])
                if len(core) > 1:
                    hops.append(core[(route_key >> 8) % len(core)])
            for fleet in self._fleets_by_asn.get(target_asn, ()):
                # Last-hop diversity is bounded by aggregation infrastructure:
                # targets map onto `trace_groups` rotating interfaces, so
                # tracing more targets cannot mint unbounded new addresses.
                groups = max(min(fleet.trace_groups, fleet.device_count), 1)
                group = mix64((target >> 84) ^ fleet.fleet_id) % groups
                device = mix64(fleet.fleet_id ^ 0x77 ^ group) % fleet.device_count
                hops.append(fleet.address_of(device, day))
        seen = set()
        unique = []
        for hop in hops:
            if hop not in seen:
                seen.add(hop)
                unique.append(hop)
        return unique

    def atlas_sample(self, day: int) -> List[int]:
        """CPE addresses observed by external platforms on ``day``.

        Models RIPE Atlas probes homed inside ISPs whose WAN addresses
        show up in public traceroute data every day.
        """
        observed: List[int] = []
        for fleet in self._fleets:
            for device in fleet.observed_devices(day):
                observed.append(fleet.address_of(device, day))
        return observed
