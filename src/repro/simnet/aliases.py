"""Ground truth for fully responsive (aliased-looking) prefixes.

The paper's central observation in Sec. 5 is that the multi-level aliased
prefix detection identifies *fully responsive* prefixes, which are a
superset of true aliases: some are one host answering for a whole prefix,
others are CDN load-balancer fleets (Fastly, Cloudflare, Akamai) or
middleboxes.  The distinction is observable through TCP fingerprints and
the Too Big Trick (shared vs. disjoint PMTU caches), so each region here
carries backend and PMTU-cache-group structure.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro._util import mix64
from repro.net.prefix import IPv6Prefix
from repro.protocols import TcpFingerprint
from repro.simnet.hosts import DnsBehavior


class RegionKind(enum.Enum):
    """Why a prefix answers for every address."""

    SINGLE_HOST = "single_host"  # a true alias: one machine, one PMTU cache
    LOADBALANCED = "loadbalanced"  # CDN fleet; PMTU caches shared per group
    MIDDLEBOX = "middlebox"  # proxy terminating handshakes preemptively


@dataclass(frozen=True)
class FullyResponsiveRegion:
    """One fully responsive prefix with its backing infrastructure.

    ``pmtu_groups`` controls Too Big Trick observations: ``1`` means every
    address shares one PMTU cache (a true alias), ``0`` means every
    address keeps its own cache (no sharing observable), ``k > 1`` means
    addresses hash into ``k`` independent caches (the partial sharing the
    paper sees for Akamai and Cloudflare).
    """

    region_id: int
    prefix: IPv6Prefix
    asn: int
    protocols: int
    kind: RegionKind = RegionKind.SINGLE_HOST
    active_from: int = 0
    active_until: Optional[int] = None
    backend_count: int = 1
    pmtu_groups: int = 1
    fingerprint: Optional[TcpFingerprint] = None
    window_varies: bool = False
    answers_large_echo: bool = True  # replies to 1300 B echo unfragmented
    dns_behavior: DnsBehavior = DnsBehavior.AUTH_OR_CLOSED

    def __post_init__(self) -> None:
        if self.backend_count < 1:
            raise ValueError("backend_count must be >= 1")
        if self.pmtu_groups < 0:
            raise ValueError("pmtu_groups must be >= 0")

    def active(self, day: int) -> bool:
        """True when the region is announced and responsive on ``day``."""
        if day < self.active_from:
            return False
        return self.active_until is None or day < self.active_until

    def backend_of(self, address: int) -> int:
        """Deterministic load-balancer choice for one address."""
        if self.backend_count == 1:
            return 0
        return mix64(
            (address & 0xFFFFFFFFFFFFFFFF)
            ^ (address >> 64)
            ^ mix64(self.region_id)
        ) % self.backend_count

    def pmtu_cache_key(self, address: int) -> tuple:
        """Identity of the PMTU cache consulted when answering ``address``.

        Addresses with equal keys fragment together after one Packet Too
        Big message — the signal the Too Big Trick measures.
        """
        if self.pmtu_groups == 0:
            return (self.region_id, "addr", address)
        if self.pmtu_groups == 1:
            return (self.region_id, "shared", 0)
        return (self.region_id, "group", self.backend_of(address) % self.pmtu_groups)

    def fingerprint_for(self, address: int) -> Optional[TcpFingerprint]:
        """The TCP fingerprint shown to a handshake with ``address``.

        Uniform for true aliases; when ``window_varies`` the per-backend
        window size differs — the dominant discriminating feature seen in
        Sec. 5.1 (154 of 160 varying prefixes varied only in window size).
        """
        if self.fingerprint is None:
            return None
        if not self.window_varies or self.backend_count == 1:
            return self.fingerprint
        backend = self.backend_of(address)
        jitter = (mix64(self.region_id ^ backend) % 8) * 1024
        return TcpFingerprint(
            options_text=self.fingerprint.options_text,
            window_size=self.fingerprint.window_size + jitter,
            window_scale=self.fingerprint.window_scale,
            mss=self.fingerprint.mss,
            ittl=self.fingerprint.ittl,
        )
