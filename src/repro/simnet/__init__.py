"""The simulated IPv6 internet (ground truth substrate).

The paper measures the real internet from a German vantage point over four
years.  This subpackage provides the synthetic stand-in: autonomous
systems populated with hosts according to realistic assignment policies,
fully responsive (aliased-looking) prefixes with CDN load-balancing
semantics, the Great Firewall's DNS injection behaviour, a DNS zone with
top lists, rotating CPE fleets feeding traceroute discovery, and churn.

Everything is deterministic under :class:`ScenarioConfig.seed` — probing
the same address on the same day always yields the same answer.
"""

from repro.simnet.hosts import DnsBehavior, HostRecord
from repro.simnet.aliases import FullyResponsiveRegion, RegionKind
from repro.simnet.gfwsim import GfwEra, GreatFirewall, InjectionMode
from repro.simnet.dnszone import DnsZone, Domain
from repro.simnet.routers import CpeFleet, RouterTopology
from repro.simnet.internet import SimInternet
from repro.simnet.config import ScenarioConfig, default_config, small_config
from repro.simnet.builder import build_internet

__all__ = [
    "CpeFleet",
    "DnsBehavior",
    "DnsZone",
    "Domain",
    "FullyResponsiveRegion",
    "GfwEra",
    "GreatFirewall",
    "HostRecord",
    "InjectionMode",
    "RegionKind",
    "RouterTopology",
    "ScenarioConfig",
    "SimInternet",
    "build_internet",
    "default_config",
    "small_config",
]
