"""World introspection: structured summaries of a built scenario.

Debugging a scenario ("why is this AS over-represented?") needs a view
of the constructed ground truth; these helpers summarize it without
touching any probe path.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.analysis.formatting import ascii_table, si_format
from repro.protocols import ALL_PROTOCOLS, Protocol
from repro.simnet.aliases import RegionKind
from repro.simnet.internet import SimInternet


@dataclass
class WorldSummary:
    """Structured inventory of one built world."""

    host_count: int = 0
    hosts_by_protocol: Dict[str, int] = field(default_factory=dict)
    region_count: int = 0
    regions_by_kind: Dict[str, int] = field(default_factory=dict)
    regions_by_length: Dict[int, int] = field(default_factory=dict)
    fleet_count: int = 0
    fleet_devices: int = 0
    domain_count: int = 0
    announced_prefixes: int = 0
    announcing_asns: int = 0
    chinese_asns: int = 0
    top_host_asns: List[Tuple[str, int]] = field(default_factory=list)

    def render(self) -> str:
        """Human-readable overview."""
        rows = [
            ["hosts", si_format(self.host_count)],
            ["fully responsive regions", self.region_count],
            ["CPE fleets (devices)", f"{self.fleet_count} ({si_format(self.fleet_devices)})"],
            ["domains", si_format(self.domain_count)],
            ["announced prefixes", self.announced_prefixes],
            ["announcing ASes", self.announcing_asns],
            ["Chinese ASes", self.chinese_asns],
        ]
        for label, count in self.hosts_by_protocol.items():
            rows.append([f"hosts answering {label}", si_format(count)])
        for kind, count in sorted(self.regions_by_kind.items()):
            rows.append([f"regions [{kind}]", count])
        overview = ascii_table(["metric", "value"], rows, title="World summary")
        top = ascii_table(
            ["AS", "hosts"],
            [[name, count] for name, count in self.top_host_asns],
            title="\nTop ASes by host count",
        )
        return overview + "\n" + top


def describe_world(internet: SimInternet, top: int = 8) -> WorldSummary:
    """Build the inventory for one world."""
    summary = WorldSummary()
    summary.host_count = len(internet.hosts)
    protocol_counts = {protocol.label: 0 for protocol in ALL_PROTOCOLS}
    asn_counter: Counter = Counter()
    rib = internet.routing.base
    for address, record in internet.hosts.items():
        for protocol in ALL_PROTOCOLS:
            if record.protocols & protocol:
                protocol_counts[protocol.label] += 1
        asn = rib.origin_as(address)
        if asn is not None:
            asn_counter[asn] += 1
    summary.hosts_by_protocol = protocol_counts

    summary.region_count = len(internet.regions)
    kind_counter: Counter = Counter()
    length_counter: Counter = Counter()
    for region in internet.regions:
        kind_counter[region.kind.value] += 1
        length_counter[region.prefix.length] += 1
    summary.regions_by_kind = dict(kind_counter)
    summary.regions_by_length = dict(length_counter)

    fleets = internet.topology.fleets
    summary.fleet_count = len(fleets)
    summary.fleet_devices = sum(fleet.device_count for fleet in fleets)
    summary.domain_count = internet.zone.domain_count
    summary.announced_prefixes = rib.prefix_count
    summary.announcing_asns = len(rib.announcing_asns())
    summary.chinese_asns = len(internet.registry.chinese_asns())
    summary.top_host_asns = [
        (internet.registry.name(asn), count)
        for asn, count in asn_counter.most_common(top)
    ]
    return summary
