"""The probe oracle: every scanner question is answered here.

:class:`SimInternet` owns the ground truth (hosts, fully responsive
regions, GFW, DNS zone, router topology) and answers probes
deterministically as a function of (address, protocol, day).  Packet loss
is *not* modelled here — the scanner layer injects loss so the oracle
stays a pure function of time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro._util import mix64
from repro.asn.registry import AsRegistry
from repro.asn.rib import RoutingHistory
from repro.net.eui64 import OuiRegistry
from repro.net.trie import PrefixTrie
from repro.protocols import (
    DnsAnswer,
    DnsResponse,
    DnsStatus,
    Protocol,
    RecordType,
    TcpFingerprint,
)
from repro.simnet.aliases import FullyResponsiveRegion
from repro.simnet.dnszone import DnsZone
from repro.simnet.gfwsim import GreatFirewall
from repro.simnet.hosts import DnsBehavior, HostRecord
from repro.simnet.routers import RouterTopology

_IPV6_MIN_MTU = 1280
_DEFAULT_MTU = 1500

#: cache-miss sentinel (``None`` is a valid cached value)
_MISSING = object()


@dataclass(frozen=True)
class EchoReply:
    """An ICMP echo reply as seen by the prober."""

    responder: int
    size: int
    fragmented: bool


@dataclass
class ControlNsQuery:
    """One query that arrived at our control-domain name server."""

    qname: str
    source: int


@dataclass
class GroundTruthNotes:
    """Builder-produced bookkeeping for evaluation and examples.

    Not visible to any detector; used by benches to compare measured
    results against the ground truth (e.g. true responsive population).
    """

    labels: Dict[str, Set[int]] = field(default_factory=dict)
    data: Dict[str, object] = field(default_factory=dict)

    def add(self, label: str, addresses: Iterable[int]) -> None:
        """Record a labelled ground-truth address set."""
        self.labels.setdefault(label, set()).update(addresses)

    def get(self, label: str) -> Set[int]:
        """A labelled set (empty when unknown)."""
        return self.labels.get(label, set())


class SimInternet:
    """Deterministic ground-truth oracle for all probe types."""

    def __init__(
        self,
        registry: AsRegistry,
        routing: RoutingHistory,
        hosts: Dict[int, HostRecord],
        regions: Iterable[FullyResponsiveRegion],
        gfw: GreatFirewall,
        zone: DnsZone,
        topology: RouterTopology,
        oui_registry: OuiRegistry,
        control_domain: str = "ipv6-research-control.example",
        control_aaaa: int = 0x20010DB8_0000_0000_0000_0000_0000_0053,
        fingerprint_table: Optional[Dict[int, TcpFingerprint]] = None,
        seed: int = 0,
    ) -> None:
        self.registry = registry
        self.routing = routing
        self.hosts = hosts
        self.gfw = gfw
        self.zone = zone
        self.topology = topology
        self.oui_registry = oui_registry
        self.control_domain = control_domain.lower()
        self.control_aaaa = control_aaaa
        self.ground_truth = GroundTruthNotes()
        self._seed = seed
        self._fingerprints = fingerprint_table or {}

        self._region_trie: PrefixTrie[FullyResponsiveRegion] = PrefixTrie()
        self._regions: List[FullyResponsiveRegion] = []
        self._long_region_slash64s: Set[int] = set()
        for region in regions:
            self.add_region(region)

        # /64-keyed cache of region lookups (valid only where no region is
        # more specific than /64); dramatically cuts trie walks because scan
        # inputs revisit the same /64s for years.
        self._region_cache: Dict[int, Optional[FullyResponsiveRegion]] = {}

        # PMTU caches keyed by FullyResponsiveRegion.pmtu_cache_key or, for
        # plain hosts, ("host", address).  Mutated by Packet Too Big
        # messages — the only stateful part of the oracle.
        self._pmtu_caches: Dict[tuple, int] = {}

        self.control_ns_log: List[ControlNsQuery] = []

        # per-day cache of currently ping-responsive CPE addresses.
        # Validity markers live *inside* the dict (mutated in place, never
        # rebound) so vantage views — shallow copies — share one cache
        # instead of each view recomputing or clearing it per day.
        self._cpe_cache_state: Dict[str, object] = {
            "day": None, "addresses": set(),
        }

        # /64-keyed origin-AS cache, valid per routing snapshot (announced
        # prefixes are never longer than /64, so the key is sound).
        self._origin_cache: Dict[int, Optional[int]] = {}
        self._origin_cache_state: Dict[str, object] = {"snapshot": None}

        # traceroute memo: hops are a pure function of (target /48 route
        # key, origin AS, fleet rotation epochs) — see RouterTopology.trace.
        # Valid until any CPE fleet enters a new rotation epoch.
        self._trace_cache: Dict[Tuple[int, Optional[int]], List[int]] = {}
        self._trace_cache_state: Dict[str, object] = {
            "day": None, "epochs": None,
        }

    # ------------------------------------------------------------------
    # topology / bookkeeping

    def add_region(self, region: FullyResponsiveRegion) -> None:
        """Register one fully responsive region."""
        self._region_trie[region.prefix] = region
        self._regions.append(region)
        if region.prefix.length > 64:
            self._long_region_slash64s.add(region.prefix.value >> 64)

    @property
    def regions(self) -> Tuple[FullyResponsiveRegion, ...]:
        """All ground-truth fully responsive regions."""
        return tuple(self._regions)

    def vantage_view(self, inside_gfw: bool) -> "SimInternet":
        """The same ground truth as seen from another vantage point.

        The view is a shallow copy sharing hosts, regions, routing,
        topology and every pure cache — only the path-dependent pieces
        differ: the Great Firewall boundary is re-anchored to the new
        vantage (an inside-GFW vantage sees injection towards *foreign*
        destinations and none towards Chinese ones), and the control-NS
        query log is private so per-vantage DNS verification traffic
        stays attributable.  Probe answers remain pure functions of
        (address, protocol, day); fleet scan order is deterministic, so
        shared caches never make results order-dependent.
        """
        import copy

        from repro.asn.topology import GfwBoundary

        view = copy.copy(self)
        view.gfw = self.gfw.with_boundary(
            GfwBoundary(
                inside_asns=self.gfw.boundary.inside_asns,
                vantage_inside=inside_gfw,
            )
        )
        view.control_ns_log = []
        return view

    def origin_as(self, address: int, day: int) -> Optional[int]:
        """Origin AS for an address per the routing table of ``day``."""
        snapshot = self.routing.snapshot_at(day)
        if snapshot is not self._origin_cache_state["snapshot"]:
            self._origin_cache.clear()
            self._origin_cache_state["snapshot"] = snapshot
        slash64 = address >> 64
        try:
            return self._origin_cache[slash64]
        except KeyError:
            origin = snapshot.origin_as(address)
            self._origin_cache[slash64] = origin
            return origin

    def region_of(self, address: int, day: int) -> Optional[FullyResponsiveRegion]:
        """The active fully responsive region covering ``address``, if any."""
        slash64 = address >> 64
        if slash64 in self._long_region_slash64s:
            match = self._region_trie.longest_match(address)
            region = None if match is None else match[1]
        else:
            try:
                region = self._region_cache[slash64]
            except KeyError:
                match = self._region_trie.longest_match(address)
                region = None if match is None else match[1]
                self._region_cache[slash64] = region
        if region is not None and region.active(day):
            return region
        return None

    def host_of(self, address: int) -> Optional[HostRecord]:
        """The ground-truth host assigned to ``address``, if any."""
        return self.hosts.get(address)

    # ------------------------------------------------------------------
    # probing

    def _responsive_cpe(self, day: int) -> Set[int]:
        """Current addresses of ping-answering CPE devices (cached per day)."""
        state = self._cpe_cache_state
        if state["day"] != day:
            current: Set[int] = set()
            for fleet in self.topology.fleets:
                if fleet.responsive_share > 0.0:
                    current.update(fleet.responsive_addresses(day))
            state["addresses"] = current
            state["day"] = day
        return state["addresses"]

    def responds(self, address: int, protocol: Protocol, day: int) -> bool:
        """Would a probe of ``protocol`` towards ``address`` be answered?

        Note: for UDP/53 this reports *target* responsiveness; GFW
        injection is a property of the DNS probe path and only surfaces
        through :meth:`dns_probe`.
        """
        region = self.region_of(address, day)
        if region is not None and region.protocols & protocol:
            return True
        host = self.hosts.get(address)
        if host is not None:
            return host.responds(address, protocol, day, self._seed)
        if protocol is Protocol.ICMP and address in self._responsive_cpe(day):
            return True
        return False

    def response_mask(self, address: int, day: int) -> int:
        """Responsive-protocol bitmask with a single ground-truth lookup.

        Covers the four non-DNS protocols plus the target side of UDP/53
        (injection excluded); the scanner's hot loop uses this instead of
        five separate :meth:`responds` calls.
        """
        mask = 0
        region = self.region_of(address, day)
        if region is not None:
            mask |= region.protocols
        host = self.hosts.get(address)
        if host is not None and host.is_up(address, day, self._seed):
            mask |= host.protocols
        if not mask & Protocol.ICMP and address in self._responsive_cpe(day):
            mask |= Protocol.ICMP
        return mask

    def probe_batch(
        self,
        targets: Iterable[int],
        day: int,
        qname: Optional[str] = None,
        need_dns: bool = True,
    ) -> List[Tuple[int, int, Optional[int], Optional[DnsBehavior]]]:
        """Fused ground-truth pass for a chunk of scan targets.

        For each target, one walk of the ground truth yields the
        ``(target, response_mask, origin_as, dns_behavior)`` tuple that a
        five-protocol scan needs, where ``dns_behavior`` is the behavior
        a genuine UDP/53 answer would follow (``None`` when the target
        runs no DNS service).  Equivalent to calling
        :meth:`response_mask`, :meth:`origin_as` and the region/host
        resolution behind :meth:`dns_probe` separately per target, but
        each region, host and routing lookup happens exactly once.

        ``qname`` is accepted for call-site parity; the behavior triple
        is qname-independent (response synthesis — including GFW
        injection — is the scan engine's business).  With
        ``need_dns=False`` the origin-AS and DNS-behavior fields are
        skipped (returned as ``None``) for callers that only want masks,
        e.g. the APD probe pass.
        """
        snapshot = self.routing.snapshot_at(day)
        if snapshot is not self._origin_cache_state["snapshot"]:
            self._origin_cache.clear()
            self._origin_cache_state["snapshot"] = snapshot
        origin_cache = self._origin_cache
        snapshot_origin = snapshot.origin_as
        region_cache = self._region_cache
        long_slash64s = self._long_region_slash64s
        longest_match = self._region_trie.longest_match
        hosts_get = self.hosts.get
        cpe = self._responsive_cpe(day)
        seed = self._seed
        icmp = int(Protocol.ICMP)
        udp53 = int(Protocol.UDP53)
        out: List[Tuple[int, int, Optional[int], Optional[DnsBehavior]]] = []
        append = out.append
        for target in targets:
            slash64 = target >> 64
            if need_dns:
                asn = origin_cache.get(slash64, _MISSING)
                if asn is _MISSING:
                    asn = snapshot_origin(target)
                    origin_cache[slash64] = asn
            else:
                asn = None
            if slash64 in long_slash64s:
                match = longest_match(target)
                region = None if match is None else match[1]
            else:
                region = region_cache.get(slash64, _MISSING)
                if region is _MISSING:
                    match = longest_match(target)
                    region = None if match is None else match[1]
                    region_cache[slash64] = region
            if region is not None and not region.active(day):
                region = None
            mask = 0
            behavior: Optional[DnsBehavior] = None
            if region is not None:
                mask = int(region.protocols)
                if need_dns and mask & udp53:
                    behavior = region.dns_behavior
            host = hosts_get(target)
            if host is not None and host.is_up(target, day, seed):
                mask |= host.protocols
                if need_dns and behavior is None and host.protocols & udp53:
                    behavior = host.dns_behavior
            if not mask & icmp and target in cpe:
                mask |= icmp
            append((target, mask, asn, behavior))
        return out

    def probe_batch_arrays(
        self,
        targets: Sequence[int],
        day: int,
        qname: Optional[str] = None,
    ) -> Tuple[bytearray, List[Optional[int]], List[Optional[DnsBehavior]]]:
        """Column-oriented :meth:`probe_batch` for the packed scan engine.

        Returns ``(masks, origin_asns, dns_behaviors)`` columns parallel
        to ``targets`` — the response mask per target as a bytearray
        (masks fit a byte: the five probe protocols span bits 0-4), plus
        the origin-AS and genuine-DNS-behavior lists.  Same ground-truth
        walk and caches as :meth:`probe_batch`, minus the per-target
        tuple boxing.
        """
        snapshot = self.routing.snapshot_at(day)
        if snapshot is not self._origin_cache_state["snapshot"]:
            self._origin_cache.clear()
            self._origin_cache_state["snapshot"] = snapshot
        origin_cache = self._origin_cache
        snapshot_origin = snapshot.origin_as
        region_cache = self._region_cache
        long_slash64s = self._long_region_slash64s
        longest_match = self._region_trie.longest_match
        hosts_get = self.hosts.get
        cpe = self._responsive_cpe(day)
        seed = self._seed
        icmp = int(Protocol.ICMP)
        udp53 = int(Protocol.UDP53)
        masks = bytearray(len(targets))
        asns: List[Optional[int]] = []
        behaviors: List[Optional[DnsBehavior]] = []
        asns_append = asns.append
        behaviors_append = behaviors.append
        for index, target in enumerate(targets):
            slash64 = target >> 64
            asn = origin_cache.get(slash64, _MISSING)
            if asn is _MISSING:
                asn = snapshot_origin(target)
                origin_cache[slash64] = asn
            asns_append(asn)
            if slash64 in long_slash64s:
                match = longest_match(target)
                region = None if match is None else match[1]
            else:
                region = region_cache.get(slash64, _MISSING)
                if region is _MISSING:
                    match = longest_match(target)
                    region = None if match is None else match[1]
                    region_cache[slash64] = region
            if region is not None and not region.active(day):
                region = None
            mask = 0
            behavior: Optional[DnsBehavior] = None
            if region is not None:
                mask = int(region.protocols)
                if mask & udp53:
                    behavior = region.dns_behavior
            host = hosts_get(target)
            if host is not None and host.is_up(target, day, seed):
                mask |= host.protocols
                if behavior is None and host.protocols & udp53:
                    behavior = host.dns_behavior
            if not mask & icmp and target in cpe:
                mask |= icmp
            masks[index] = mask
            behaviors_append(behavior)
        return masks, asns, behaviors

    def batch_responsive(
        self, addresses: Iterable[int], protocol: Protocol, day: int
    ) -> Set[int]:
        """The subset of ``addresses`` that answers ``protocol`` probes."""
        return {
            address for address in addresses if self.responds(address, protocol, day)
        }

    def dns_probe(self, target: int, qname: str, day: int) -> List[DnsResponse]:
        """All responses a UDP/53 query towards ``target`` provokes.

        Includes GFW-injected forgeries (source-spoofed as the target)
        and the target's genuine answer when it runs a DNS service.
        """
        target_asn = self.origin_as(target, day)
        responses = self.gfw.inject(target, target_asn, qname, day)
        genuine = self._genuine_dns_response(target, qname, day)
        if genuine is not None:
            responses.append(genuine)
        return responses

    def _genuine_dns_response(
        self, target: int, qname: str, day: int
    ) -> Optional[DnsResponse]:
        region = self.region_of(target, day)
        if region is not None and region.protocols & Protocol.UDP53:
            behavior = region.dns_behavior
        else:
            host = self.hosts.get(target)
            if host is None or not host.responds(target, Protocol.UDP53, day, self._seed):
                return None
            behavior = host.dns_behavior
        return self._answer_as(behavior, target, qname, day)

    def _answer_as(
        self, behavior: DnsBehavior, target: int, qname: str, day: int
    ) -> Optional[DnsResponse]:
        if behavior in (DnsBehavior.NOT_DNS, DnsBehavior.AUTH_OR_CLOSED):
            # Authoritative-only servers and closed resolvers answer the
            # probe, but refuse to resolve a foreign name recursively.
            return DnsResponse(responder=target, qname=qname, status=DnsStatus.REFUSED)
        if behavior is DnsBehavior.REFERRAL:
            answer = DnsAnswer(rtype=RecordType.NS, target="a.root-servers.net")
            return DnsResponse(
                responder=target, qname=qname, status=DnsStatus.NOERROR, answers=(answer,)
            )
        if behavior is DnsBehavior.BROKEN:
            draw = mix64(target ^ mix64(day))
            if draw % 2:
                return DnsResponse(responder=target, qname=qname, status=DnsStatus.SERVFAIL)
            answer = DnsAnswer(rtype=RecordType.AAAA, address=1)  # ::1, localhost
            return DnsResponse(
                responder=target, qname=qname, status=DnsStatus.NOERROR, answers=(answer,)
            )
        # Open and proxy resolvers actually resolve the name.
        addresses = self.resolve_name(qname)
        if not addresses:
            return DnsResponse(responder=target, qname=qname, status=DnsStatus.NXDOMAIN)
        if self._is_control_name(qname):
            egress = target
            if behavior is DnsBehavior.PROXY_RESOLVER:
                egress = target ^ mix64(target) & 0xFFFF  # different interface
            self.control_ns_log.append(ControlNsQuery(qname=qname, source=egress))
        answers = tuple(
            DnsAnswer(rtype=RecordType.AAAA, address=address) for address in addresses
        )
        return DnsResponse(
            responder=target, qname=qname, status=DnsStatus.NOERROR, answers=answers
        )

    def _is_control_name(self, qname: str) -> bool:
        lowered = qname.lower()
        return lowered == self.control_domain or lowered.endswith(
            "." + self.control_domain
        )

    def resolve_name(self, qname: str) -> Tuple[int, ...]:
        """Authoritative AAAA resolution of any name in the simulation."""
        if self._is_control_name(qname):
            return (self.control_aaaa,)
        return self.zone.resolve_aaaa(qname)

    # ------------------------------------------------------------------
    # TCP fingerprints

    def tcp_fingerprint(self, address: int, day: int) -> Optional[TcpFingerprint]:
        """Handshake features of a TCP/80 connection, if one completes."""
        region = self.region_of(address, day)
        if region is not None and region.protocols & (Protocol.TCP80 | Protocol.TCP443):
            return region.fingerprint_for(address)
        host = self.hosts.get(address)
        if host is None:
            return None
        if not host.responds(address, Protocol.TCP80, day, self._seed) and not host.responds(
            address, Protocol.TCP443, day, self._seed
        ):
            return None
        return self._fingerprints.get(host.fingerprint_id)

    # ------------------------------------------------------------------
    # ICMP echo + Packet Too Big (the Too Big Trick substrate)

    def _pmtu_key(self, address: int, day: int) -> Optional[tuple]:
        region = self.region_of(address, day)
        if region is not None and region.protocols & Protocol.ICMP:
            if not region.answers_large_echo:
                return None
            return region.pmtu_cache_key(address)
        host = self.hosts.get(address)
        if host is not None and host.responds(address, Protocol.ICMP, day, self._seed):
            return ("host", address)
        return None

    def icmp_echo(self, address: int, day: int, size: int = 56) -> Optional[EchoReply]:
        """Send an ICMP echo request of ``size`` bytes.

        Replies are fragmented when the responder's PMTU cache for our
        path is smaller than the reply size.
        """
        if size <= _IPV6_MIN_MTU and not self.responds(address, Protocol.ICMP, day):
            return None
        key = self._pmtu_key(address, day)
        if key is None:
            return None
        mtu = self._pmtu_caches.get(key, _DEFAULT_MTU)
        return EchoReply(responder=address, size=size, fragmented=size > mtu)

    def send_packet_too_big(self, address: int, day: int, mtu: int = _IPV6_MIN_MTU) -> bool:
        """Deliver an ICMPv6 Packet Too Big to ``address``'s responder.

        Returns True when some responder updated a PMTU cache.
        """
        key = self._pmtu_key(address, day)
        if key is None:
            return False
        self._pmtu_caches[key] = mtu
        return True

    def reset_pmtu_caches(self) -> None:
        """Expire all PMTU cache entries (between experiment runs)."""
        self._pmtu_caches.clear()

    # ------------------------------------------------------------------
    # traceroute

    def trace(self, target: int, day: int) -> List[int]:
        """Hop addresses a traceroute towards ``target`` reveals.

        Routing depends on the day only through each CPE fleet's
        rotation epoch (``day // rotation_period``), so results are
        memoized until some fleet rotates.  Callers must treat the
        returned list as read-only.
        """
        state = self._trace_cache_state
        if day != state["day"]:
            epochs = tuple(
                day // fleet.rotation_period for fleet in self.topology.fleets
            )
            if epochs != state["epochs"]:
                self._trace_cache.clear()
                state["epochs"] = epochs
            state["day"] = day
        asn = self.origin_as(target, day)
        key = (target >> 80, asn)
        hops = self._trace_cache.get(key)
        if hops is None:
            hops = self.topology.trace(target, asn, day)
            self._trace_cache[key] = hops
        return hops
