"""A synthetic global DNS zone: domains, AAAA/NS/MX records, top lists.

Stands in for the paper's institutional DNS scans (Sec. 3.2): >300 M
domains from CZDS/CT/cc-TLDs resolved to AAAA, NS and MX records, plus
the Alexa, Majestic and Umbrella 1 M top lists.  The scenario builder
places a realistic share of domains inside CDN fully responsive prefixes
so the Sec. 5.2 analysis (how many domains would alias filtering exclude)
has something to find.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

#: Canonical top list names used throughout analysis outputs.
TOP_LIST_NAMES = ("alexa", "majestic", "umbrella")


@dataclass(frozen=True)
class Domain:
    """One registered domain and its resolution results.

    ``ranks`` maps top list name → 1-based rank for domains present on a
    top list.
    """

    name: str
    addresses: Tuple[int, ...] = ()
    ns_hosts: Tuple[str, ...] = ()
    mx_hosts: Tuple[str, ...] = ()
    ranks: Mapping[str, int] = field(default_factory=dict)

    def rank(self, top_list: str) -> Optional[int]:
        """The domain's rank on ``top_list``, if listed."""
        return self.ranks.get(top_list)


class DnsZone:
    """The resolvable universe: domains plus NS/MX host records."""

    def __init__(self) -> None:
        self._domains: Dict[str, Domain] = {}
        self._host_records: Dict[str, Tuple[int, ...]] = {}
        self._top_lists: Dict[str, List[str]] = {name: [] for name in TOP_LIST_NAMES}

    def add_domain(self, domain: Domain) -> None:
        """Register a domain; duplicate names must be identical."""
        existing = self._domains.get(domain.name)
        if existing is not None and existing != domain:
            raise ValueError(f"conflicting records for {domain.name}")
        self._domains[domain.name] = domain
        for top_list, rank in domain.ranks.items():
            entries = self._top_lists.setdefault(top_list, [])
            entries.append(domain.name)
            del rank  # ordering is finalized in `finalize`

    def add_host_record(self, hostname: str, addresses: Sequence[int]) -> None:
        """Register AAAA records for an NS/MX host name."""
        self._host_records[hostname] = tuple(addresses)

    def finalize(self) -> None:
        """Sort top lists by rank after all domains are added."""
        for top_list, names in self._top_lists.items():
            names.sort(key=lambda name: self._domains[name].ranks[top_list])

    def domain(self, name: str) -> Optional[Domain]:
        """Lookup one domain record."""
        return self._domains.get(name)

    def resolve_aaaa(self, name: str) -> Tuple[int, ...]:
        """AAAA resolution for a domain or an NS/MX host name."""
        domain = self._domains.get(name)
        if domain is not None:
            return domain.addresses
        return self._host_records.get(name, ())

    def domains(self) -> Iterator[Domain]:
        """Iterate every registered domain."""
        return iter(self._domains.values())

    def host_records(self) -> Iterator[Tuple[str, Tuple[int, ...]]]:
        """Iterate ``(hostname, addresses)`` for NS/MX hosts."""
        return iter(self._host_records.items())

    def top_list(self, name: str, limit: Optional[int] = None) -> List[str]:
        """Domain names on a top list, best rank first."""
        entries = self._top_lists.get(name, [])
        return entries[:limit] if limit is not None else list(entries)

    @property
    def domain_count(self) -> int:
        """Number of registered domains."""
        return len(self._domains)

    @property
    def host_record_count(self) -> int:
        """Number of registered NS/MX host records."""
        return len(self._host_records)
