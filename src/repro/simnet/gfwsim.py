"""The Great Firewall's DNS injection behaviour.

Sec. 4.2 of the paper: probes for blocked domains that cross into Chinese
networks are answered by injectors at the border even when the probed
address is dead.  Observable properties reproduced here:

* injection only for *blocked* domains; unblocked domains get silence,
  not even a DNS error;
* two to three responses per query (multiple injectors), with rare
  pathological bursts (the paper saw up to 440);
* earlier eras answered AAAA queries with **A records** carrying IPv4
  addresses of unrelated operators (Facebook, Microsoft, Dropbox);
* the most recent era answers with valid-looking **AAAA records whose
  address is a Teredo address** embedding such an IPv4;
* the spoofed response's source address equals the probed target, which
  is why ZMap counts the target as responsive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import enum

from repro._util import mix64
from repro.asn.topology import GfwBoundary
from repro.net.teredo import encode_teredo
from repro.protocols import DnsAnswer, DnsResponse, DnsStatus, RecordType


class InjectionMode(enum.Enum):
    """What the injectors put into forged responses."""

    A_RECORD = "a_record"  # IPv4 answer to an AAAA query
    TEREDO = "teredo"  # AAAA answer carrying a Teredo address


@dataclass(frozen=True)
class GfwEra:
    """One behavioural era of the firewall: ``[start_day, end_day)``."""

    start_day: int
    end_day: int
    mode: InjectionMode

    def active(self, day: int) -> bool:
        """True while this era's injectors are running."""
        return self.start_day <= day < self.end_day


@dataclass(frozen=True)
class InjectedIpv4Pool:
    """IPv4 ranges whose addresses appear in forged answers.

    Each entry is ``(base, prefix_len, owner_asn)``; owners are operators
    unrelated to the queried domain, which is how the paper (and related
    censorship work) recognizes forgeries.
    """

    ranges: Tuple[Tuple[int, int, int], ...]

    def pick(self, draw: int) -> Tuple[int, int]:
        """A deterministic (ipv4, owner_asn) choice for a 64-bit draw."""
        base, length, owner = self.ranges[draw % len(self.ranges)]
        host_bits = 32 - length
        host = (draw >> 8) & ((1 << host_bits) - 1)
        return base | host, owner

    def owner_of(self, ipv4: int) -> Optional[int]:
        """The owner ASN whose range contains ``ipv4``, if any."""
        for base, length, owner in self.ranges:
            span = 1 << (32 - length)
            if base <= ipv4 < base + span:
                return owner
        return None


#: Default forged-answer pool: Facebook, Microsoft, Dropbox ranges.
DEFAULT_IPV4_POOL = InjectedIpv4Pool(
    ranges=(
        (0x1F0D5800, 21, 32934),  # 31.13.88.0/21   Facebook
        (0x0D6B4000, 18, 8075),  # 13.107.64.0/18   Microsoft
        (0xA27D0000, 16, 19679),  # 162.125.0.0/16  Dropbox
    )
)

#: Teredo servers named in forged AAAA answers (arbitrary but stable).
_TEREDO_SERVERS = (0x41EA9E00, 0x53EF3C01)


class GreatFirewall:
    """Deterministic injector bank guarding the Chinese border."""

    def __init__(
        self,
        boundary: GfwBoundary,
        eras: Sequence[GfwEra],
        blocked_domains: Sequence[str],
        ipv4_pool: InjectedIpv4Pool = DEFAULT_IPV4_POOL,
        seed: int = 0,
        burst_probability: float = 0.002,
    ) -> None:
        self._boundary = boundary
        self._eras = tuple(sorted(eras, key=lambda era: era.start_day))
        self._blocked = frozenset(domain.lower() for domain in blocked_domains)
        self._pool = ipv4_pool
        self._seed = seed
        self._burst_probability = burst_probability
        # memoized mix64(day ^ seed) for inject_prepared's per-day hash
        self._inject_day: Optional[int] = None
        self._inject_day_hash = 0

    def with_boundary(self, boundary: GfwBoundary) -> "GreatFirewall":
        """A copy of this firewall as seen from a different vantage.

        Injection behaviour is path-dependent: swapping the boundary
        (e.g. ``vantage_inside=True`` for a Chinese vantage point) flips
        which destinations cross the firewall while keeping eras,
        blocked domains, the forged-answer pool and all injection draws
        identical — the same censorship infrastructure, another path.
        """
        return GreatFirewall(
            boundary=boundary,
            eras=self._eras,
            blocked_domains=self._blocked,
            ipv4_pool=self._pool,
            seed=self._seed,
            burst_probability=self._burst_probability,
        )

    @property
    def boundary(self) -> GfwBoundary:
        """The path boundary this firewall instance injects across."""
        return self._boundary

    @property
    def eras(self) -> Tuple[GfwEra, ...]:
        """All configured eras, sorted by start day."""
        return self._eras

    @property
    def ipv4_pool(self) -> InjectedIpv4Pool:
        """The forged-answer IPv4 pool."""
        return self._pool

    def is_blocked(self, qname: str) -> bool:
        """True when the firewall censors ``qname``."""
        return qname.lower() in self._blocked

    def active_era(self, day: int) -> Optional[GfwEra]:
        """The era running on ``day``, if any."""
        for era in self._eras:
            if era.active(day):
                return era
        return None

    def would_inject(self, target_asn: Optional[int], qname: str, day: int) -> bool:
        """True when a UDP/53 probe would trigger injection."""
        return (
            self.active_era(day) is not None
            and self.is_blocked(qname)
            and self._boundary.crosses(target_asn)
        )

    def inject(
        self, target: int, target_asn: Optional[int], qname: str, day: int
    ) -> List[DnsResponse]:
        """Forged responses for one probe; empty when no injection occurs."""
        era = self.active_era(day)
        if era is None or not self.is_blocked(qname) or not self._boundary.crosses(target_asn):
            return []
        return self.inject_prepared(target, qname, day, era)

    def inject_prepared(
        self, target: int, qname: str, day: int, era: GfwEra
    ) -> List[DnsResponse]:
        """Forged responses once all gates are known to pass.

        Hot-path variant of :meth:`inject` for callers (the scan engine)
        that have already checked era/blocklist/border per scan instead
        of per probe.  Draw sequence is identical to :meth:`inject`.
        """
        if day != self._inject_day:
            self._inject_day = day
            self._inject_day_hash = mix64(day ^ self._seed)
        base_draw = mix64(
            (target & 0xFFFFFFFFFFFFFFFF) ^ (target >> 64) ^ self._inject_day_hash
        )
        count = 2 + base_draw % 2  # two or three injectors answer
        if (base_draw >> 32) % 1_000_000 < self._burst_probability * 1_000_000:
            count = 64 + base_draw % 400  # rare pathological bursts
        pick = self._pool.pick
        a_record = era.mode is InjectionMode.A_RECORD
        responses = []
        for index in range(count):
            draw = mix64(base_draw ^ (index + 1))
            ipv4, _owner = pick(draw)
            if a_record:
                answer = DnsAnswer(rtype=RecordType.A, address=ipv4)
            else:
                server = _TEREDO_SERVERS[draw % 2]
                port = 1024 + (draw >> 16) % 60000
                answer = DnsAnswer(
                    rtype=RecordType.AAAA,
                    address=encode_teredo(server, ipv4, port),
                )
            responses.append(
                DnsResponse(
                    responder=target,
                    qname=qname,
                    status=DnsStatus.NOERROR,
                    answers=(answer,),
                    injected=True,
                )
            )
        return responses
