"""Construct a complete simulated internet from a :class:`ScenarioConfig`.

The builder is where the paper's qualitative findings are encoded as
*mechanisms* (structured assignment, CDN fleets, rotating CPE, GFW eras)
rather than as hard-coded results: the pipeline and the analysis layers
re-derive the paper's numbers by measuring this world.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro._util import derive_rng, mix64
from repro.asn.orgs import paper_registry
from repro.asn.registry import AsCategory, AsInfo, AsRegistry
from repro.asn.rib import RibSnapshot, RoutingHistory
from repro.asn.topology import GfwBoundary
from repro.net.eui64 import OuiRegistry
from repro.net.prefix import IPv6Prefix
from repro.protocols import Protocol, TcpFingerprint
from repro.simnet.aliases import FullyResponsiveRegion, RegionKind
from repro.simnet.config import ScenarioConfig
from repro.simnet.dnszone import TOP_LIST_NAMES, DnsZone, Domain
from repro.simnet.gfwsim import GfwEra, GreatFirewall, InjectionMode
from repro.simnet.hosts import DnsBehavior, HostRecord
from repro.simnet.internet import SimInternet
from repro.simnet.routers import CpeFleet, RouterTopology

_LOW64 = (1 << 64) - 1

# ---------------------------------------------------------------------------
# TCP fingerprint templates (Sec. 5.1 features).

FP_LINUX = TcpFingerprint("mss;sackOK;ts;nop;wscale", 29200, 7, 1460, 64)
FP_LINUX_CLOUD = TcpFingerprint("mss;sackOK;ts;nop;wscale", 64240, 8, 1460, 64)
FP_BSD = TcpFingerprint("mss;nop;wscale;sackOK;ts", 65535, 6, 1440, 64)
FP_WINDOWS = TcpFingerprint("mss;nop;wscale;nop;nop;sackOK", 8192, 8, 1440, 128)
FP_CDN_EDGE = TcpFingerprint("mss;sackOK;ts;nop;wscale", 65535, 10, 1400, 255)
FP_MIDDLEBOX = TcpFingerprint("mss", 16384, 0, 1380, 255)

FINGERPRINT_TABLE: Dict[int, TcpFingerprint] = {
    1: FP_LINUX,
    2: FP_LINUX_CLOUD,
    3: FP_BSD,
    4: FP_WINDOWS,
    5: FP_CDN_EDGE,
    6: FP_MIDDLEBOX,
}

#: vendors registered in the OUI registry (vendor name -> OUI).
_VENDOR_OUIS = {
    "ZTE": 0x001E73,
    "AVM": 0x3C3786,
    "Huawei": 0x00259E,
    "Sagemcom": 0x7C03D8,
    "TP-Link": 0x14CC20,
}


class PrefixAllocator:
    """Hands out disjoint prefixes from the global unicast space.

    Starts above the Teredo prefix (2001::/32) so injected Teredo
    addresses can never collide with allocated space.
    """

    def __init__(self, start: int = 0x2400 << 112) -> None:
        self._cursor = start

    def take(self, length: int) -> IPv6Prefix:
        """Allocate the next free prefix of ``length`` bits."""
        size = 1 << (128 - length)
        aligned = (self._cursor + size - 1) & ~(size - 1)
        self._cursor = aligned + size
        return IPv6Prefix(aligned, length)


def _zipf_weights(count: int, alpha: float, offset: int = 8) -> List[float]:
    """Normalized Zipf-like weights with a flattened head."""
    raw = [1.0 / (rank + offset) ** alpha for rank in range(count)]
    total = sum(raw)
    return [weight / total for weight in raw]


@dataclass
class _World:
    """Mutable build state threaded through the construction steps."""

    config: ScenarioConfig
    registry: AsRegistry
    allocator: PrefixAllocator = field(default_factory=PrefixAllocator)
    rib: RibSnapshot = field(default_factory=RibSnapshot)
    hosts: Dict[int, HostRecord] = field(default_factory=dict)
    regions: List[FullyResponsiveRegion] = field(default_factory=list)
    topology: RouterTopology = field(default_factory=RouterTopology)
    zone: DnsZone = field(default_factory=DnsZone)
    org_prefixes: Dict[int, List[IPv6Prefix]] = field(default_factory=dict)
    generic_asns: List[int] = field(default_factory=list)
    generic_cn_asns: List[int] = field(default_factory=list)
    labels: Dict[str, Set[int]] = field(default_factory=dict)
    data: Dict[str, object] = field(default_factory=dict)
    routing_events: List[Tuple[int, IPv6Prefix, int]] = field(default_factory=list)
    next_region_id: int = 1

    def label(self, name: str) -> Set[int]:
        return self.labels.setdefault(name, set())

    def announce(self, asn: int, length: int) -> IPv6Prefix:
        """Allocate and announce one prefix for an AS."""
        prefix = self.allocator.take(length)
        self.rib.announce(prefix, asn)
        self.org_prefixes.setdefault(asn, []).append(prefix)
        return prefix

    def allocate_unannounced(self, asn: int, length: int) -> IPv6Prefix:
        """Allocate address space without announcing it (event pools)."""
        prefix = self.allocator.take(length)
        self.org_prefixes.setdefault(asn, []).append(prefix)
        return prefix

    def add_region(self, **kwargs) -> FullyResponsiveRegion:
        region = FullyResponsiveRegion(region_id=self.next_region_id, **kwargs)
        self.next_region_id += 1
        self.regions.append(region)
        return region


# ---------------------------------------------------------------------------
# host templates


def _profile_protocols(profile: str, rng: random.Random) -> Tuple[int, DnsBehavior]:
    """Draw a protocol mask (and DNS behaviour) for one host."""
    behavior = DnsBehavior.NOT_DNS
    if profile == "mixed":
        roll = rng.random()
        if roll < 0.66:
            mask = Protocol.ICMP
        elif roll < 0.81:
            mask = Protocol.ICMP | Protocol.TCP80 | Protocol.TCP443
            if rng.random() < 0.10:
                mask |= Protocol.UDP443
        elif roll < 0.825:
            mask = Protocol.ICMP | Protocol.TCP80
        elif roll < 0.90:
            mask = Protocol.ICMP | Protocol.UDP53
            if rng.random() < 0.20:
                mask |= Protocol.TCP80
            behavior = _draw_dns_behavior(rng)
        elif roll < 0.908:
            mask = Protocol.ICMP | Protocol.TCP80 | Protocol.TCP443 | Protocol.UDP443
        elif roll < 0.923:
            mask = Protocol.TCP80 | Protocol.TCP443
        elif roll < 0.928:
            mask = Protocol.UDP53
            behavior = _draw_dns_behavior(rng)
        else:
            mask = Protocol.ICMP
    elif profile == "server":
        mask = Protocol.ICMP | Protocol.TCP80
        if rng.random() < 0.80:
            mask |= Protocol.TCP443
        if rng.random() < 0.08:
            mask |= Protocol.UDP443
    elif profile == "gateway":
        mask = Protocol.ICMP
        if rng.random() < 0.10:
            mask |= Protocol.TCP80
    elif profile == "router":
        mask = Protocol.ICMP
    elif profile == "dns":
        mask = Protocol.ICMP | Protocol.UDP53
        behavior = _draw_dns_behavior(rng)
    else:
        raise ValueError(f"unknown host profile: {profile}")
    return int(mask), behavior


_DNS_BEHAVIOR_CHOICES = (
    (DnsBehavior.AUTH_OR_CLOSED, 0.938),
    (DnsBehavior.OPEN_RESOLVER, 0.046),
    (DnsBehavior.REFERRAL, 0.0042),
    (DnsBehavior.PROXY_RESOLVER, 0.0002),
    (DnsBehavior.BROKEN, 0.011),
)


def _draw_dns_behavior(rng: random.Random) -> DnsBehavior:
    roll = rng.random() * sum(weight for _, weight in _DNS_BEHAVIOR_CHOICES)
    cumulative = 0.0
    for behavior, weight in _DNS_BEHAVIOR_CHOICES:
        cumulative += weight
        if roll < cumulative:
            return behavior
    return DnsBehavior.AUTH_OR_CLOSED


def _draw_churn(
    config: ScenarioConfig, rng: random.Random, always_up: bool
) -> Tuple[float, int]:
    if always_up:
        return 1.0, 30
    stability = rng.uniform(config.stability_low, config.stability_high)
    period = rng.randint(config.flap_period_low, config.flap_period_high)
    return stability, period


def _draw_born_day(config: ScenarioConfig, rng: random.Random) -> int:
    """Some hosts pre-date the service; the rest ramp up linearly."""
    if rng.random() < config.born_day_zero_share:
        return 0
    return rng.randint(1, config.final_day)


def _fingerprint_for_mask(mask: int, rng: random.Random) -> int:
    if not mask & (Protocol.TCP80 | Protocol.TCP443):
        return 0
    return rng.choices((1, 2, 3, 4), weights=(0.55, 0.25, 0.12, 0.08))[0]


# ---------------------------------------------------------------------------
# build steps


def _build_registry(world: _World) -> None:
    config = world.config
    rng = derive_rng(config.seed, "registry")
    categories = (
        [AsCategory.ISP] * 55
        + [AsCategory.HOSTING] * 15
        + [AsCategory.ENTERPRISE] * 10
        + [AsCategory.CONTENT] * 8
        + [AsCategory.ACADEMIC] * 7
        + [AsCategory.CLOUD] * 5
    )
    countries = ["US", "DE", "FR", "GB", "NL", "BR", "JP", "IN", "PL", "SE", "IT", "AU"]
    for index in range(config.generic_as_count):
        asn = 100_000 + index
        info = AsInfo(
            asn=asn,
            name=f"Net-{index:04d}",
            country=rng.choice(countries),
            category=rng.choice(categories),
        )
        world.registry.add(info)
        world.generic_asns.append(asn)
    for index in range(config.generic_cn_as_count):
        asn = 130_000 + index
        world.registry.add(
            AsInfo(asn=asn, name=f"CN-Net-{index:03d}", country="CN",
                   category=AsCategory.ISP)
        )
        world.generic_cn_asns.append(asn)
    # Scenario files may declare farms/fleets on ASes the paper never
    # names (private-range ASNs and the like).  Register them here — after
    # the generic loops, so existing presets keep identical rng draws —
    # or the farm builder would silently skip them for lack of announced
    # space and the fleet builder would KeyError.
    for farm in config.farms:
        if farm.asn not in world.registry:
            world.registry.add(AsInfo(asn=farm.asn, name=f"SCN-AS{farm.asn}",
                                      country="ZZ", category=AsCategory.HOSTING))
    for fleet in config.fleets:
        if fleet.asn not in world.registry:
            world.registry.add(AsInfo(asn=fleet.asn, name=f"SCN-AS{fleet.asn}",
                                      country="ZZ", category=AsCategory.ISP))


def _announce_space(world: _World) -> None:
    """Give every AS announced space; named orgs get bespoke layouts."""
    config = world.config
    rng = derive_rng(config.seed, "announce")
    # Named orgs with bespoke allocations (handled by their region builders
    # or below); everything else gets one or two /32s.
    bespoke = {
        16509: [29, 29, 31],  # Amazon
        54113: [32, 36],  # Fastly
        13335: [32],  # Cloudflare (plus /48s announced separately)
        209242: [44],  # Cloudflare London
        20940: [32],  # Akamai (plus /48s)
        33905: [40],  # Akamai Technologies
        15169: [32],  # Google (plus /48s)
        3320: [29, 32],  # DTAG
        6057: [32],  # ANTEL — the single /32 the ZTE finding lives in
        12322: [26, 32],  # Free SAS
        4134: [28, 32],  # China Telecom Backbone
        4812: [30],  # China Telecom
        3356: [29],  # Level3
        9808: [30],  # China Mobile
        45899: [32],  # VNPT
        397165: [],  # EpicUp announces only its /28s (below)
    }
    for info in world.registry:
        if info.asn == 212144:  # Trafficforce announces only at its event
            continue
        lengths = bespoke.get(info.asn)
        if lengths is None:
            lengths = [32] if rng.random() < 0.75 else [32, 40]
        for length in lengths:
            world.announce(info.asn, length)
    # EpicUp's 61 fully responsive /28s are announced individually.
    for _ in range(config.epicup_prefix_count):
        world.announce(397165, 28)


def _org_prefix(world: _World, asn: int, index: int = 0) -> IPv6Prefix:
    return world.org_prefixes[asn][index]


def _region_active_from(
    config: ScenarioConfig, rng: random.Random, ramped: bool
) -> int:
    """CDN alias prefixes activate over the timeline (growth)."""
    if not ramped or rng.random() < config.cdn_activation_ramp:
        return 0
    return rng.randint(1, config.final_day - 30)


def _build_cdn_regions(world: _World) -> None:
    config = world.config
    rng = derive_rng(config.seed, "regions")

    def add(prefix: IPv6Prefix, asn: int, **kwargs) -> FullyResponsiveRegion:
        return world.add_region(prefix=prefix, asn=asn, **kwargs)

    web_mask = int(Protocol.ICMP | Protocol.TCP80 | Protocol.TCP443 | Protocol.UDP443)
    # Amazon: most but not all of each announced /29 is backed by the
    # load balancer fleet (the paper: 99.6 % of Amazon's *input* is
    # alias-filtered, yet its announced prefixes are not fully aliased,
    # so detection happens at the /64 level, not at BGP level).
    amazon_regions = []
    for index in (0, 1):
        base = _org_prefix(world, 16509, index)
        for sub_index, sub in enumerate(base.subprefixes(31)):
            if sub_index == 3:
                continue  # a quarter of each /29 is ordinary EC2 space
            amazon_regions.append(
                add(sub, 16509, protocols=web_mask, kind=RegionKind.LOADBALANCED,
                    backend_count=64, pmtu_groups=4, fingerprint=FP_LINUX_CLOUD,
                    answers_large_echo=False)
            )
    # Endpoint /64 subnets inside the Amazon regions become the
    # aliased-/64 detections that grow with the input.
    subnet_rng = derive_rng(config.seed, "amazon-subnets")
    subnets = set()
    while len(subnets) < config.amazon_endpoint_subnets_final:
        region = amazon_regions[subnet_rng.randrange(len(amazon_regions))]
        offset = subnet_rng.getrandbits(64 - region.prefix.length)
        subnets.add(region.prefix.value | (offset << 64))
    subnets = sorted(subnets)
    world.data["amazon_endpoint_subnets"] = subnets

    # Fastly: 95.3 % of announced space aliased (whole /32; the /36 stays
    # clean for origin infrastructure).
    add(_org_prefix(world, 54113, 0), 54113, protocols=web_mask,
        kind=RegionKind.LOADBALANCED, backend_count=32, pmtu_groups=1,
        fingerprint=FP_CDN_EDGE)

    # Cloudflare: /48s announced in BGP, all fully responsive, partial
    # PMTU sharing.  Most prefixes are web front-ends (incl. QUIC); a
    # handful serve DNS (1.1.1.1-style anycast) *without* QUIC — the
    # paper's Table 2 observation that no prefix combined UDP/443 and
    # UDP/53, and that only Cloudflare covers every probe across its
    # prefixes.
    cf_dns_mask = int(
        Protocol.ICMP | Protocol.TCP80 | Protocol.TCP443 | Protocol.UDP53
    )
    cf_prefixes = []
    for index in range(config.cloudflare_prefix_count):
        prefix = world.announce(13335, 48)
        cf_prefixes.append(prefix)
        serves_dns = index % 8 == 0
        # a minority of front-end prefixes shows partial PMTU sharing
        # (the paper: 268 Cloudflare prefixes); half ignore large echoes
        partial = index % 7 == 0
        add(prefix, 13335,
            protocols=cf_dns_mask if serves_dns else web_mask,
            kind=RegionKind.LOADBALANCED,
            backend_count=24, pmtu_groups=2 + index % 3 if partial else 1,
            fingerprint=FP_CDN_EDGE,
            answers_large_echo=index % 2 == 0,
            active_from=_region_active_from(config, rng, ramped=True),
            dns_behavior=DnsBehavior.OPEN_RESOLVER if serves_dns
            else DnsBehavior.NOT_DNS)
    world.data["cloudflare_prefixes"] = cf_prefixes

    # Cloudflare London: the whole announced /44 is aliased (100 %).
    add(_org_prefix(world, 209242, 0), 209242, protocols=web_mask,
        kind=RegionKind.LOADBALANCED, backend_count=16, pmtu_groups=2,
        fingerprint=FP_CDN_EDGE)

    # Akamai: /48s with partial PMTU sharing (the paper's dominant
    # partial-TBT population) plus the incrementally-assigned /48 that
    # trapped 6Tree.
    akamai_prefixes = []
    for index in range(config.akamai_prefix_count):
        prefix = world.announce(20940, 48)
        akamai_prefixes.append(prefix)
        # Akamai dominates the paper's partial-PMTU population (1 k of
        # 1.6 k partial prefixes) but most of its space still shares
        partial = index % 3 == 0
        add(prefix, 20940, protocols=web_mask, kind=RegionKind.LOADBALANCED,
            backend_count=16, pmtu_groups=2 + index % 2 if partial else 1,
            fingerprint=FP_CDN_EDGE,
            answers_large_echo=index % 2 == 0,
            active_from=_region_active_from(config, rng, ramped=True))
    trap = world.announce(20940, 48)
    add(trap, 20940, protocols=web_mask, kind=RegionKind.LOADBALANCED,
        backend_count=8, pmtu_groups=2, fingerprint=FP_CDN_EDGE)
    world.data["akamai_trap_prefix"] = trap
    world.data["akamai_prefixes"] = akamai_prefixes

    # Akamai Technologies: entire /40 aliased (100 %).
    add(_org_prefix(world, 33905, 0), 33905, protocols=web_mask,
        kind=RegionKind.LOADBALANCED, backend_count=8, pmtu_groups=1,
        fingerprint=FP_CDN_EDGE)

    # Google: a couple of dozen /48 front-end prefixes.
    google_prefixes = []
    for index in range(config.google_prefix_count):
        prefix = world.announce(15169, 48)
        google_prefixes.append(prefix)
        add(prefix, 15169, protocols=web_mask, kind=RegionKind.LOADBALANCED,
            backend_count=32, pmtu_groups=1, fingerprint=FP_CDN_EDGE,
            active_from=_region_active_from(config, rng, ramped=True))
    world.data["google_prefixes"] = google_prefixes

    # EpicUp: every announced /28 is one fully responsive middlebox.
    for prefix in world.org_prefixes[397165]:
        add(prefix, 397165, protocols=int(Protocol.ICMP | Protocol.TCP80 | Protocol.TCP443),
            kind=RegionKind.MIDDLEBOX, backend_count=1, pmtu_groups=1,
            fingerprint=FP_MIDDLEBOX)

    # Misaka anycast DNS: one /48 answering UDP/53 (with Cloudflare, the
    # only aliased prefixes responsive to DNS in Table 2).
    misaka = world.announce(50069, 48)
    add(misaka, 50069, protocols=int(Protocol.ICMP | Protocol.UDP53), kind=RegionKind.LOADBALANCED,
        backend_count=4, pmtu_groups=1, fingerprint=None,
        dns_behavior=DnsBehavior.AUTH_OR_CLOSED)

    # Trafficforce: ICMP-only /64s announced at the February 2022 event.
    pool = world.allocate_unannounced(212144, 40)
    tf_rng = derive_rng(config.seed, "trafficforce")
    slots = tf_rng.sample(range(1 << 24), config.trafficforce_prefix_count)
    for slot in slots:
        prefix = IPv6Prefix(pool.value | (slot << 64), 64)
        world.routing_events.append((config.trafficforce_event_day, prefix, 212144))
        add(prefix, 212144, protocols=int(Protocol.ICMP),
            kind=RegionKind.MIDDLEBOX, backend_count=1, pmtu_groups=1,
            fingerprint=None, answers_large_echo=False,
            active_from=config.trafficforce_event_day)

    # Generic hosting aliased prefixes (mostly /64, small tails both ways).
    count = config.base_alias_final
    shorter = int(count * config.alias_shorter64_fraction)
    longer = int(count * config.alias_longer64_fraction)
    generic_set = set(world.generic_asns)
    hosting = [
        info.asn
        for info in world.registry.by_category(AsCategory.HOSTING)
        if info.asn in generic_set
    ] or world.generic_asns
    active_2018 = config.base_alias_2018
    dense_members: Set[int] = set()
    alias_member_availability: Dict[int, int] = {}
    for index in range(count):
        asn = hosting[index % len(hosting)]
        base = world.org_prefixes[asn][0]
        active_from = 0 if index < active_2018 else rng.randint(1, config.final_day - 40)
        window_varies = rng.random() < 0.004
        if index < shorter:
            length = rng.choice((48, 52, 56, 60))
        elif index < shorter + longer:
            length = rng.choice((96, 112, 120))
        else:
            length = 64
        subnet = rng.getrandbits(max(length, 64) - base.length)
        value = base.value | (subnet << (128 - max(length, 64)))
        if length > 64:
            value &= ~((1 << (128 - length)) - 1)
        prefix = IPv6Prefix(value, length)
        # ~1 % of fully responsive prefixes share nothing (the paper's
        # 249 prefixes where every address needed its own error message)
        pmtu_groups = 0 if rng.random() < 0.012 else 1
        region = add(prefix, asn,
                     protocols=int(Protocol.ICMP | Protocol.TCP80 | Protocol.TCP443),
                     kind=RegionKind.SINGLE_HOST, backend_count=1,
                     pmtu_groups=pmtu_groups,
                     fingerprint=FP_LINUX,
                     window_varies=window_varies,
                     active_from=active_from,
                     answers_large_echo=rng.random() < 0.45)
        if length > 64:
            # the >100-address APD threshold needs dense input inside these
            members = {prefix.value | rng.getrandbits(128 - length) for _ in range(130)}
            dense_members.update(members)
            for member in members:
                alias_member_availability[member] = max(active_from, 1)
        else:
            # hosted services inside the region surface in DNS once the
            # region is live, seeding the /64-level APD candidates
            for _ in range(2):
                member = prefix.value | rng.getrandbits(128 - prefix.length)
                alias_member_availability[member] = max(active_from, 1)
        del region
    world.label("dense_region_members").update(dense_members)
    world.data["alias_member_availability"] = alias_member_availability


def _spread_host_addresses(
    world: _World,
    asn: int,
    count: int,
    rng: random.Random,
    iid_style: str = "low",
) -> List[int]:
    """Place ``count`` host addresses in scattered /64s of an AS."""
    prefixes = world.org_prefixes.get(asn)
    if not prefixes:
        return []
    addresses: List[int] = []
    for _ in range(count):
        base = rng.choice(prefixes)
        subnet = rng.getrandbits(64 - base.length)
        network = base.value | (subnet << 64)
        if iid_style == "low":
            iid = rng.randint(1, 0xFFFF)
        elif iid_style == "random":
            iid = rng.getrandbits(64)
        else:
            raise ValueError(f"unknown IID style: {iid_style}")
        addresses.append(network | iid)
    return addresses


def _build_plain_hosts(world: _World) -> None:
    """Visible responsive hosts outside structured farms."""
    config = world.config
    rng = derive_rng(config.seed, "plain-hosts")
    total = config.initial_responsive_hosts + config.grown_responsive_hosts
    named_total = 0
    allocations: List[Tuple[int, int]] = []
    for asn, share in config.responsive_org_shares.items():
        count = int(total * share)
        allocations.append((asn, count))
        named_total += count
    remainder = max(total - named_total, 0)
    weights = _zipf_weights(len(world.generic_asns), 1.05)
    counts = [int(remainder * weight) for weight in weights]
    for asn, count in zip(world.generic_asns, counts):
        if count:
            allocations.append((asn, count))

    discovered = world.label("discovered_initial")
    discovered_late = world.label("discovered_ramp")
    for asn, count in allocations:
        addresses = _spread_host_addresses(world, asn, count, rng)
        for address in addresses:
            born = _draw_born_day(config, rng)
            always_up = born == 0 and rng.random() < config.always_up_share
            profile = "dns" if asn == 50069 else "mixed"
            mask, behavior = _profile_protocols(profile, rng)
            stability, period = _draw_churn(config, rng, always_up)
            world.hosts[address] = HostRecord(
                protocols=mask, born_day=born, stability=stability,
                flap_period=period, dns_behavior=behavior,
                fingerprint_id=_fingerprint_for_mask(mask, rng),
            )
            if born == 0:
                discovered.add(address)
            else:
                discovered_late.add(address)

    # The one-shot rDNS batch: responsive when added, then partially dying
    # (the paper's 2019→2020 dip).
    rdns = world.label("rdns_batch")
    for _ in range(config.rdns_batch_hosts):
        asn = rng.choice(world.generic_asns)
        addresses = _spread_host_addresses(world, asn, 1, rng)
        if not addresses:
            continue
        address = addresses[0]
        dies = rng.random() < config.rdns_batch_death_share
        dead_day = rng.randint(config.rdns_batch_day + 60, config.rdns_batch_day + 540) if dies else None
        mask, behavior = _profile_protocols("mixed", rng)
        world.hosts[address] = HostRecord(
            protocols=mask, born_day=0, dead_day=dead_day,
            stability=0.97, flap_period=30, dns_behavior=behavior,
            fingerprint_id=_fingerprint_for_mask(mask, rng),
        )
        rdns.add(address)

    # Deep flappers: responsive at some point, silent for >30-day
    # stretches, so the service forgets them until the Sec. 6 re-scan.
    # Births ramp over the first two-thirds of the timeline — the
    # unresponsive pool accumulates over the years, it does not start
    # fully populated.
    flappers = world.label("deep_flappers")
    vnpt_count = int(config.deep_flapper_hosts * config.deep_flapper_vnpt_share)
    birth_horizon = max(config.final_day * 2 // 3, 1)
    for index in range(config.deep_flapper_hosts):
        asn = 45899 if index < vnpt_count else rng.choice(world.generic_asns)
        addresses = _spread_host_addresses(world, asn, 1, rng)
        if not addresses:
            continue
        address = addresses[0]
        mask, behavior = _profile_protocols("mixed", rng)
        world.hosts[address] = HostRecord(
            protocols=mask, born_day=rng.randint(0, birth_horizon),
            stability=config.deep_flapper_stability,
            flap_period=config.deep_flapper_period,
            dns_behavior=behavior,
            fingerprint_id=_fingerprint_for_mask(mask, rng),
        )
        flappers.add(address)


def _build_farms(world: _World) -> None:
    """Structured server farms: the signal TGAs learn from."""
    config = world.config
    for farm_index, farm in enumerate(config.farms):
        rng = derive_rng(config.seed, "farm", farm_index)
        prefixes = world.org_prefixes.get(farm.asn)
        if not prefixes:
            continue
        base = prefixes[0]
        subnet_bits = 64 - base.length
        # A contiguous, structured block of subnets under one /48-aligned
        # chunk so pattern mining sees low-entropy dimensions.
        anchor = rng.getrandbits(max(subnet_bits - 16, 0)) << 16 if subnet_bits > 16 else 0
        subnets = [anchor + index for index in range(farm.subnet_count)]
        addresses: List[int] = []
        if farm.pattern == "subnet_one":
            chosen = rng.sample(subnets, min(farm.assigned_count, len(subnets)))
            addresses = [base.value | (subnet << 64) | 1 for subnet in chosen]
        elif farm.pattern == "low_byte":
            per_subnet = max(farm.assigned_count // max(farm.subnet_count, 1), 1)
            for subnet in subnets:
                network = base.value | (subnet << 64)
                iids = rng.sample(range(1, farm.iid_span), min(per_subnet, farm.iid_span - 1))
                addresses.extend(network | iid for iid in iids)
        elif farm.pattern == "cluster":
            per_subnet = max(farm.assigned_count // max(farm.subnet_count, 1), 1)
            for subnet in subnets:
                network = base.value | (subnet << 64)
                cursor = rng.randint(1, 500)
                for _ in range(per_subnet):
                    addresses.append(network | cursor)
                    cursor += rng.randint(1, 16)  # dense: seed gaps stay below 64
        else:
            raise ValueError(f"unknown farm pattern: {farm.pattern}")
        addresses = addresses[: farm.assigned_count + farm.assigned_count // 10]

        discovered = world.label("farm_discovered")
        hidden = world.label("farm_hidden")
        for address in addresses:
            born = _draw_born_day(config, rng) if farm.born_spread else 0
            mask, behavior = _profile_protocols(farm.protocols_profile, rng)
            stability, period = _draw_churn(config, rng, rng.random() < 0.2)
            world.hosts[address] = HostRecord(
                protocols=mask, born_day=born, stability=stability,
                flap_period=period, dns_behavior=behavior,
                fingerprint_id=_fingerprint_for_mask(mask, rng),
            )
            if rng.random() < farm.discovered_fraction:
                discovered.add(address)
            else:
                hidden.add(address)


def _build_routers_and_fleets(world: _World) -> None:
    config = world.config
    rng = derive_rng(config.seed, "routers")
    router_label = world.label("routers")

    def add_router_host(address: int) -> None:
        world.hosts[address] = HostRecord(
            protocols=int(Protocol.ICMP), born_day=0, stability=0.995,
            flap_period=60,
        )
        router_label.add(address)

    # Transit backbone routers.
    transit_asns = rng.sample(world.generic_asns, min(12, len(world.generic_asns)))
    for index in range(config.transit_router_count):
        asn = transit_asns[index % len(transit_asns)]
        base = world.org_prefixes[asn][0]
        address = base.value | (0xFFFF << 64) | (index + 1)
        world.topology.add_transit_router(address)
        add_router_host(address)

    fleet_id = 1

    def register_fleet(spec_asn, devices, vendor, oui, eui64, rotation, daily,
                       shared=0, responsive_share=0.0, trace_groups=16):
        nonlocal fleet_id
        pool_base = world.org_prefixes[spec_asn][0]
        pool_length = max(pool_base.length, 40)
        pool = IPv6Prefix(pool_base.value, pool_length)
        fleet = CpeFleet(
            fleet_id=fleet_id, asn=spec_asn, pool=pool, device_count=devices,
            oui=oui, vendor=vendor, eui64_iids=eui64,
            rotation_period=rotation, daily_observations=daily,
            shared_mac_devices=shared, responsive_share=responsive_share,
            trace_groups=trace_groups,
        )
        fleet_id += 1
        world.topology.add_fleet(fleet)
        # two stable core routers per fleet AS
        for router_index in (1, 2):
            address = pool_base.value | (0xBBBB << 64) | router_index
            world.topology.add_core_router(spec_asn, address)
            add_router_host(address)
        return fleet

    for spec in config.fleets:
        register_fleet(spec.asn, spec.device_count, spec.vendor, spec.oui,
                       spec.eui64, spec.rotation_period,
                       spec.daily_observations, spec.shared_mac_devices,
                       spec.responsive_share)

    # Generic EUI-64 fleets across random ISPs.
    isp_pool = [
        info.asn for info in world.registry.by_category(AsCategory.ISP)
        if info.asn >= 100_000
    ]
    vendors = list(_VENDOR_OUIS.items())
    fleet_count = min(config.generic_fleet_count, len(isp_pool))
    if fleet_count:
        per_fleet_devices = max(config.generic_fleet_devices // fleet_count, 10)
        per_fleet_daily = max(config.generic_fleet_daily_observations // fleet_count, 1)
        for asn in rng.sample(isp_pool, fleet_count):
            vendor, oui = rng.choice(vendors)
            register_fleet(asn, per_fleet_devices, vendor, oui, True,
                           rng.choice((7, 14, 21, 28)), per_fleet_daily,
                           responsive_share=0.15)

    # Chinese fleets (randomized IIDs) sized by the Table 5 shares.
    total_share = sum(share for _, share in config.gfw_as_shares)
    generic_cn_share = max(100.0 - total_share, 0.0)
    cn_daily_total = config.cn_fleet_total_daily_observations
    for asn, share in config.gfw_as_shares:
        daily = max(int(cn_daily_total * share / 100.0), 1)
        register_fleet(asn, config.cn_fleet_devices_per_as, "Huawei",
                       _VENDOR_OUIS["Huawei"], False,
                       config.cn_fleet_rotation_period, daily,
                       trace_groups=max(int(share / 3.0), 1))
    if world.generic_cn_asns:
        # the ~6 % tail outside the paper's top-10 is thin: only a few
        # generic Chinese ASes host fleets large enough to surface daily
        with_fleet = world.generic_cn_asns[::5]
        per_generic = max(
            int(cn_daily_total * generic_cn_share / 100.0 / max(len(with_fleet), 1)), 1
        )
        for asn in with_fleet:
            register_fleet(asn, config.cn_fleet_devices_per_as // 10, "Huawei",
                           _VENDOR_OUIS["Huawei"], False,
                           config.cn_fleet_rotation_period, per_generic,
                           trace_groups=1)

    # Core routers for named orgs without fleets (traceroute targets).
    for asn in (63949, 16509, 13335, 15169, 20940, 3356, 54113):
        prefixes = world.org_prefixes.get(asn)
        if not prefixes:
            continue
        address = prefixes[0].value | (0xBBBB << 64) | 1
        world.topology.add_core_router(asn, address)
        add_router_host(address)

    # Extra routers visible only from CAIDA Ark's vantage points.
    ark_label = world.label("ark_only_routers")
    for index in range(config.ark_new_router_count):
        asn = rng.choice(world.generic_asns)
        base = world.org_prefixes[asn][0]
        address = base.value | (0xAAAA << 64) | (index + 1)
        add_router_host(address)
        ark_label.add(address)


def _build_passive_snapshots(world: _World) -> None:
    """The Sec. 6 passive candidate sets: CAIDA Ark and the DET snapshot."""
    config = world.config
    rng = derive_rng(config.seed, "passive-snapshots")
    ark = world.label("ark_addresses")
    ark.update(world.label("ark_only_routers"))
    known_routers = sorted(world.label("routers"))
    ark.update(rng.sample(known_routers, min(len(known_routers), 200)))

    det = world.label("det_snapshot")
    discovered = sorted(
        world.label("discovered_initial") | world.label("farm_discovered")
    )
    hidden = sorted(world.label("farm_hidden"))
    hidden_picks = int(config.det_snapshot_size * config.det_hidden_fraction)
    det.update(rng.sample(discovered, min(len(discovered),
                                          config.det_snapshot_size - hidden_picks)))
    det.update(rng.sample(hidden, min(len(hidden), hidden_picks)))


def _build_zone(world: _World) -> None:
    config = world.config
    rng = derive_rng(config.seed, "zone")
    cf_prefixes: List[IPv6Prefix] = list(world.data.get("cloudflare_prefixes", []))
    other_cdn: List[IPv6Prefix] = list(world.data.get("google_prefixes", []))
    fastly = world.org_prefixes.get(54113)
    if fastly:
        other_cdn.append(fastly[0])
    amazon_subnets: Sequence[int] = world.data.get("amazon_endpoint_subnets", [])

    # Domains may only reference *discoverable* hosts: pointing DNS at the
    # hidden farm population would leak it into the hitlist input and
    # erase the Sec. 6 discovery potential.
    hidden = world.label("farm_hidden")
    web_hosts = [
        address
        for address, record in world.hosts.items()
        if record.protocols & Protocol.TCP80 and address not in hidden
    ]
    if not web_hosts:
        web_hosts = [1]

    # Decide names and hosting up front; Cloudflare prefix popularity is
    # Zipf with one heavy /48 (the paper's 3.94 M-domain prefix).
    cf_weights = _zipf_weights(len(cf_prefixes), 1.3, offset=1) if cf_prefixes else []
    aliased_count = int(config.domain_count * config.domains_aliased_fraction)
    cloudflare_count = int(aliased_count * config.cloudflare_domain_share)

    placements: Dict[str, Tuple[int, ...]] = {}
    aliased_names: List[str] = []
    plain_names: List[str] = []
    for index in range(config.domain_count):
        name = f"dom{index:07d}.example"
        if index < cloudflare_count and cf_prefixes:
            prefix = rng.choices(cf_prefixes, weights=cf_weights)[0]
            placements[name] = (prefix.value | rng.getrandbits(128 - prefix.length),)
            aliased_names.append(name)
        elif index < aliased_count and other_cdn:
            prefix = rng.choice(other_cdn)
            placements[name] = (prefix.value | rng.getrandbits(128 - prefix.length),)
            aliased_names.append(name)
        else:
            placements[name] = (rng.choice(web_hosts),)
            plain_names.append(name)
    world.data["aliased_domain_names"] = aliased_names

    # Top lists: listed domains hit aliased space at the configured rates.
    ranks: Dict[str, Dict[str, int]] = {name: {} for name in placements}
    for top_list in TOP_LIST_NAMES:
        rate = config.top_list_aliased_rates.get(top_list, 0.15)
        size = min(config.top_list_size, config.domain_count)
        aliased_picks = int(size * rate)
        pool = rng.sample(aliased_names, min(aliased_picks, len(aliased_names)))
        pool += rng.sample(plain_names, min(size - len(pool), len(plain_names)))
        rng.shuffle(pool)
        for rank, name in enumerate(pool, start=1):
            ranks[name][top_list] = rank

    # NS/MX hosts: 71 % live inside Amazon's aliased endpoint subnets.
    ns_mx_label = world.label("ns_mx_addresses")
    hostnames: List[str] = []
    for index in range(config.ns_mx_host_count):
        hostname = f"ns{index:04d}.provider.example"
        if rng.random() < config.ns_mx_amazon_share and amazon_subnets:
            subnet = rng.choice(amazon_subnets)
            address = subnet | rng.getrandbits(64)
        else:
            address = rng.choice(web_hosts)
        world.zone.add_host_record(hostname, (address,))
        ns_mx_label.add(address)
        hostnames.append(hostname)

    with_ns_mx = set(
        rng.sample(plain_names, min(len(plain_names), config.ns_mx_host_count * 4))
    )
    for name, addresses in placements.items():
        if name in with_ns_mx and len(hostnames) >= 2:
            ns_hosts = tuple(rng.sample(hostnames, 2))
            mx_hosts = (rng.choice(hostnames),)
        else:
            ns_hosts, mx_hosts = (), ()
        world.zone.add_domain(
            Domain(name=name, addresses=addresses, ns_hosts=ns_hosts,
                   mx_hosts=mx_hosts, ranks=ranks[name])
        )
    world.zone.finalize()

    # The blocked domains must resolve somewhere real (Google space).
    google = world.org_prefixes.get(15169)
    if google:
        google_addr = google[0].value | 0x2004
        for blocked in config.blocked_domains:
            world.zone.add_domain(Domain(name=blocked, addresses=(google_addr,)))


def _build_gfw(world: _World) -> GreatFirewall:
    config = world.config
    boundary = GfwBoundary.from_registry(
        world.registry, vantage_inside=config.vantage_inside_gfw
    )
    eras = tuple(
        GfwEra(
            start_day=era.start_day,
            end_day=era.end_day,
            mode=InjectionMode.TEREDO if era.teredo else InjectionMode.A_RECORD,
        )
        for era in config.gfw_eras
    )
    return GreatFirewall(
        boundary=boundary,
        eras=eras,
        blocked_domains=config.blocked_domains,
        seed=config.seed,
    )


def _build_initial_input(world: _World) -> None:
    """The 2018-07-01 accumulated input the service starts from."""
    config = world.config
    rng = derive_rng(config.seed, "initial-input")
    seed_input = world.label("initial_input")
    seed_input.update(world.label("discovered_initial"))
    seed_input.update(world.label("deep_flappers"))
    seed_input.update(world.label("routers"))
    seed_input.update(
        address for address in world.label("farm_discovered")
        if world.hosts[address].born_day == 0
    )
    # Historical junk: fleet addresses captured before the service epoch.
    fleets = world.topology.fleets
    target = config.initial_input_size
    amazon_subnets: Sequence[int] = world.data.get("amazon_endpoint_subnets", [])
    endpoint_share = 0.30
    while len(seed_input) < target * (1 - endpoint_share) and fleets:
        fleet = fleets[rng.randrange(len(fleets))]
        device = rng.randrange(fleet.device_count)
        day = -rng.randint(1, 700)
        seed_input.add(fleet.address_of(device, day))
    pool_2018 = amazon_subnets[: config.amazon_endpoint_subnets_2018]
    while len(seed_input) < target and pool_2018:
        subnet = rng.choice(pool_2018)
        seed_input.add(subnet | rng.getrandbits(64))


def _finalize_labels(world: _World, internet: SimInternet) -> None:
    notes = internet.ground_truth
    for label, addresses in world.labels.items():
        notes.add(label, addresses)
    notes.data.update(world.data)
    notes.add("all_hosts", world.hosts.keys())


def build_internet(config: ScenarioConfig) -> SimInternet:
    """Build the full simulated internet for one scenario."""
    world = _World(config=config, registry=paper_registry())
    _build_registry(world)
    _announce_space(world)
    _build_cdn_regions(world)
    _build_plain_hosts(world)
    _build_farms(world)
    _build_routers_and_fleets(world)
    _build_passive_snapshots(world)
    _build_zone(world)
    gfw = _build_gfw(world)

    routing = RoutingHistory(world.rib)
    for day, prefix, asn in world.routing_events:
        routing.add_event(day, prefix, asn)

    oui_registry = OuiRegistry()
    for vendor, oui in _VENDOR_OUIS.items():
        oui_registry.register(oui, vendor)

    internet = SimInternet(
        registry=world.registry,
        routing=routing,
        hosts=world.hosts,
        regions=world.regions,
        gfw=gfw,
        zone=world.zone,
        topology=world.topology,
        oui_registry=oui_registry,
        fingerprint_table=FINGERPRINT_TABLE,
        seed=config.seed,
    )
    _build_initial_input(world)
    _finalize_labels(world, internet)
    return internet
