"""Probe protocols and shared wire-level record types.

The IPv6 Hitlist service probes five protocols (Sec. 3.1 of the paper):
ICMP, TCP/80 (HTTP), TCP/443 (HTTPS), UDP/53 (DNS) and UDP/443 (QUIC).
Host responsiveness is stored as a bitmask over :class:`Protocol` for
compactness (the simulation tracks hundreds of thousands of hosts).

DNS answer records live here because they are produced by the simulated
internet (name servers and the Great Firewall injectors) and consumed by
both the scanner and the GFW response classifier.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Tuple


class Protocol(enum.IntFlag):
    """Probe protocols as combinable bit flags.

    >>> mask = Protocol.ICMP | Protocol.TCP80
    >>> Protocol.ICMP in mask
    True
    >>> Protocol.UDP53 in mask
    False
    """

    NONE = 0
    ICMP = 1
    TCP80 = 2
    TCP443 = 4
    UDP53 = 8
    UDP443 = 16

    @property
    def label(self) -> str:
        """The paper's label for this protocol (e.g. ``TCP/80``)."""
        return _LABELS[self]


_LABELS = {
    Protocol.ICMP: "ICMP",
    Protocol.TCP80: "TCP/80",
    Protocol.TCP443: "TCP/443",
    Protocol.UDP53: "UDP/53",
    Protocol.UDP443: "UDP/443",
}

#: Scan order used throughout tables (matches the paper's Table 1 columns).
ALL_PROTOCOLS: Tuple[Protocol, ...] = (
    Protocol.ICMP,
    Protocol.TCP443,
    Protocol.TCP80,
    Protocol.UDP443,
    Protocol.UDP53,
)

#: The protocols used by the aliased prefix detection (Sec. 3.1).
APD_PROTOCOLS: Tuple[Protocol, ...] = (Protocol.ICMP, Protocol.TCP80)


def protocols_in(mask: int) -> FrozenSet[Protocol]:
    """The set of protocols contained in a bitmask.

    >>> sorted(p.label for p in protocols_in(Protocol.ICMP | Protocol.UDP53))
    ['ICMP', 'UDP/53']
    """
    return frozenset(protocol for protocol in ALL_PROTOCOLS if protocol & mask)


def mask_of(protocols: Iterable[Protocol]) -> int:
    """Combine protocols into a bitmask."""
    mask = 0
    for protocol in protocols:
        mask |= protocol
    return int(mask)


class RecordType(enum.Enum):
    """DNS resource record types used by the reproduction."""

    A = "A"
    AAAA = "AAAA"
    NS = "NS"
    MX = "MX"


class DnsStatus(enum.Enum):
    """DNS response status codes (subset relevant to the paper)."""

    NOERROR = 0
    SERVFAIL = 2
    NXDOMAIN = 3
    REFUSED = 5


@dataclass(frozen=True)
class DnsAnswer:
    """One answer record in a DNS response.

    ``address`` is a 32-bit value for A records and a 128-bit value for
    AAAA records; NS/MX answers carry a target name instead.
    """

    rtype: RecordType
    address: int = 0
    target: str = ""


@dataclass(frozen=True)
class DnsResponse:
    """A DNS response as observed by the scanner.

    ``responder`` is the IPv6 source address of the response packet; the
    GFW injects responses whose responder equals the probed target, which
    is exactly why ZMap counts them as successes (Sec. 4.2).
    """

    responder: int
    qname: str
    status: DnsStatus = DnsStatus.NOERROR
    answers: Tuple[DnsAnswer, ...] = field(default_factory=tuple)
    injected: bool = False  # ground-truth flag, never visible to detectors

    @property
    def answer_addresses(self) -> Tuple[int, ...]:
        """Addresses of all A/AAAA answers."""
        return tuple(
            answer.address
            for answer in self.answers
            if answer.rtype in (RecordType.A, RecordType.AAAA)
        )


@dataclass(frozen=True)
class TcpFingerprint:
    """TCP handshake features used for alias fingerprinting (Sec. 5.1).

    ``options_text`` is the order-preserving string representation of TCP
    options; ``ittl`` is the initial TTL inferred by rounding the observed
    hop-limit up to the next power of two.
    """

    options_text: str
    window_size: int
    window_scale: int
    mss: int
    ittl: int

    def matches(self, other: "TcpFingerprint", ignore_window: bool = False) -> bool:
        """Feature-wise comparison, optionally ignoring the window size.

        The window size legitimately varies between connections to one
        host, so Sec. 5.1 treats a window-size-only difference as weak
        evidence of distinct hosts.
        """
        if (
            self.options_text != other.options_text
            or self.window_scale != other.window_scale
            or self.mss != other.mss
            or self.ittl != other.ittl
        ):
            return False
        return ignore_window or self.window_size == other.window_size
