"""Yarrp-style randomized traceroute engine.

The hitlist service traceroutes all scan targets to discover new
candidate addresses (Fig. 1 of the paper).  Discovered hops — especially
rotating last-hop CPE addresses — are the paper's main input-bias and
GFW-trigger mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Set

from repro._util import mix64

_M64 = 0xFFFFFFFFFFFFFFFF
# SplitMix64 finalizer constants (kept in sync with repro._util.mix64)
_MIX_C1 = 0xBF58476D1CE4E5B9
_MIX_C2 = 0x94D049BB133111EB
from repro.obs.metrics import MetricsRegistry
from repro.runtime.faults import FaultPlan
from repro.scan.blocklist import Blocklist
from repro.simnet.internet import SimInternet


@dataclass
class TraceRunResult:
    """Hops discovered by one traceroute run."""

    day: int
    targets_traced: int = 0
    hops: Set[int] = field(default_factory=set)


class YarrpTracer:
    """Traces batches of targets and collects hop addresses."""

    def __init__(
        self,
        internet: SimInternet,
        blocklist: Optional[Blocklist] = None,
        sample_rate: float = 1.0,
        seed: int = 0,
        fault_plan: Optional[FaultPlan] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if not 0.0 < sample_rate <= 1.0:
            raise ValueError(f"sample rate out of range: {sample_rate}")
        self._internet = internet
        self._blocklist = blocklist or Blocklist()
        self._sample_rate = sample_rate
        self._sample_threshold = int(sample_rate * float(1 << 64))
        self._seed = seed
        self._fault_plan = fault_plan
        self._metrics = metrics
        if metrics is not None:
            self._m_targets = metrics.counter(
                "repro_trace_targets_total", "Targets traced by Yarrp runs.")
            self._m_hops = metrics.counter(
                "repro_trace_hops_total",
                "Distinct hop addresses discovered per traceroute run.")

    def _sampled(self, target: int, day: int) -> bool:
        if self._sample_rate >= 1.0:
            return True
        draw = mix64(
            (target & 0xFFFFFFFFFFFFFFFF) ^ (target >> 64) ^ mix64(day ^ self._seed)
        )
        return draw < self._sample_threshold

    def trace_targets(self, targets: Iterable[int], day: int) -> TraceRunResult:
        """Traceroute every (sampled, non-blocked) target once.

        During a vantage outage no traceroute leaves the scan host, so
        the run discovers nothing.
        """
        result = TraceRunResult(day=day)
        plan = self._fault_plan
        if plan is not None and plan.vantage_down(day):
            return result
        internet = self._internet
        blocklist = self._blocklist
        # hot loop: skip blocklist checks entirely when it is empty and
        # hoist the per-day sampling hash out of the per-target draw
        blocked = blocklist.is_blocked if len(blocklist) else None
        sample_all = self._sample_rate >= 1.0
        day_hash = mix64(day ^ self._seed)
        threshold = self._sample_threshold
        trace = internet.trace
        hops_seen = result.hops
        for target in targets:
            if blocked is not None and blocked(target):
                continue
            if not sample_all:
                value = ((target & _M64) ^ (target >> 64) ^ day_hash) & _M64
                value = ((value ^ (value >> 30)) * _MIX_C1) & _M64
                value = ((value ^ (value >> 27)) * _MIX_C2) & _M64
                if (value ^ (value >> 31)) >= threshold:
                    continue
            result.targets_traced += 1
            if blocked is None:
                hops_seen.update(trace(target, day))
            else:
                for hop in trace(target, day):
                    if not blocked(hop):
                        hops_seen.add(hop)
        if self._metrics is not None:
            self._m_targets.inc(result.targets_traced)
            self._m_hops.inc(len(result.hops))
        return result
