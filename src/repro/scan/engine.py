"""Batched, shard-parallel scan engine (the ZMap speed lesson).

The per-scan hot path used to walk the ground truth two to three times
per target: ``scan_all_protocols`` resolved the response mask, then
``scan_udp53`` re-checked the blocklist and re-resolved region/host per
target, and ``dns_probe`` looked up the origin AS again.  The engine
fuses all of it into one pass:

* :meth:`SimInternet.probe_batch` answers response mask, origin AS and
  genuine-DNS behavior for a whole chunk in a single ground-truth walk;
* per-target loss draws share chunk-level precomputed ``mix64`` inner
  hashes — the ``mix64((day << 8) ^ …)`` term is constant per (day,
  protocol, attempt) and is hoisted out of the per-target loop;
* target chunks can be sharded across a ``concurrent.futures`` worker
  pool (opt-in via ``ServiceSettings.scan_workers`` / ``--scan-workers``).

Determinism contract (what checkpoint/resume and the deterministic
metric families depend on): the chunk partition is fixed by
``chunk_size`` alone, every chunk is a pure function of (scanner
configuration, targets, day, qname), and chunk results are merged in
chunk order — so responder sets, metric counter totals, the
control-domain NS log and checkpoint bytes are byte-identical for any
worker count, including ``workers=1``.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro._util import mix64
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer
from repro.protocols import DnsAnswer, DnsResponse, DnsStatus, Protocol, RecordType
from repro.runtime.faults import RETRY_SALT
from repro.simnet.hosts import DnsBehavior
from repro.simnet.internet import ControlNsQuery

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.scan.zmap import ScanResult, Udp53Result, ZMapScanner

_M64 = 0xFFFFFFFFFFFFFFFF
# SplitMix64 finalizer constants (kept in sync with repro._util.mix64,
# inlined in the per-target loop below)
_MIX_C1 = 0xBF58476D1CE4E5B9
_MIX_C2 = 0x94D049BB133111EB
_FAST_SALT = 0x5CA11

#: the four cheap protocols probed from one fused 64-bit loss draw, in
#: 16-bit-slice order (must match ``ZMapScanner.scan_all_protocols``)
FAST_PROTOCOLS = (Protocol.ICMP, Protocol.TCP80, Protocol.TCP443, Protocol.UDP443)

#: default shard size; small enough to keep worker queues busy on the
#: default scenario, large enough that per-chunk overhead is noise
DEFAULT_CHUNK_SIZE = 4096

_REFUSED_BEHAVIORS = (DnsBehavior.NOT_DNS, DnsBehavior.AUTH_OR_CLOSED)

#: scanner a forked/threaded pool worker probes with; set by the parent
#: before the pool's workers are created (fork inherits it)
_WORKER_SCANNER: Optional["ZMapScanner"] = None


class _ScanContext:
    """Per-(scanner, day, qname) constants hoisted out of the hot loop."""

    __slots__ = (
        "attempts", "loss_threshold", "threshold16", "fast_inner",
        "udp_inner", "inject_possible", "gfw_era", "resolved", "answers",
        "is_control", "mday", "referral_answers", "broken_answers",
    )

    def __init__(self, scanner: "ZMapScanner", day: int, qname: str) -> None:
        internet = scanner._internet
        seed = scanner._seed
        self.attempts = scanner._retry_attempts
        self.loss_threshold = scanner._loss_threshold
        self.threshold16 = int(scanner._loss_rate * 65536.0)
        # inner mix64 of the loss formulas: constant per (day, attempt)
        self.fast_inner = tuple(
            mix64((day << 8) ^ seed ^ _FAST_SALT ^ ((attempt * RETRY_SALT) & _M64))
            for attempt in range(self.attempts)
        )
        self.udp_inner = tuple(
            mix64(
                (day << 8) ^ int(Protocol.UDP53) ^ seed
                ^ ((attempt * RETRY_SALT) & _M64)
            )
            for attempt in range(self.attempts)
        )
        gfw = internet.gfw
        self.gfw_era = gfw.active_era(day)
        self.inject_possible = (
            self.gfw_era is not None and gfw.is_blocked(qname)
        )
        self.resolved = internet.resolve_name(qname)
        self.answers = tuple(
            DnsAnswer(rtype=RecordType.AAAA, address=address)
            for address in self.resolved
        )
        self.is_control = internet._is_control_name(qname)
        self.mday = mix64(day)
        self.referral_answers = (
            DnsAnswer(rtype=RecordType.NS, target="a.root-servers.net"),
        )
        self.broken_answers = (DnsAnswer(rtype=RecordType.AAAA, address=1),)


class ChunkResult:
    """Picklable outcome of one fused chunk scan (merged in chunk order)."""

    __slots__ = (
        "count", "burst_targets", "fast_retry_draws", "udp_retry_draws",
        "fast_responders", "udp_hits", "control_log", "scannable",
    )

    def __init__(self) -> None:
        self.count = 0
        self.burst_targets = 0
        self.fast_retry_draws = 0
        self.udp_retry_draws = 0
        #: per fast protocol (slice order), responders in target order
        self.fast_responders: Tuple[List[int], ...] = ([], [], [], [])
        #: (target, responses) for every UDP/53 responder, in target order
        self.udp_hits: List[Tuple[int, Tuple[DnsResponse, ...]]] = []
        #: (qname, egress) control-NS queries this chunk would have sent;
        #: replayed into the live log by the parent so worker processes
        #: never mutate shared state
        self.control_log: List[Tuple[str, int]] = []
        #: non-blocked targets, kept only when rate limiting needs the
        #: probed list for its per-AS responder ranking
        self.scannable: Optional[List[int]] = None

    def __getstate__(self):
        return tuple(getattr(self, name) for name in self.__slots__)

    def __setstate__(self, state):
        for name, value in zip(self.__slots__, state):
            setattr(self, name, value)


def _scan_chunk(
    scanner: "ZMapScanner",
    targets: Sequence[int],
    day: int,
    qname: str,
    ctx: Optional[_ScanContext] = None,
    keep_scannable: bool = False,
) -> ChunkResult:
    """Fused five-protocol scan of one chunk — a pure function.

    Replicates ``scan_all_protocols`` + ``scan_udp53`` bit for bit:
    identical loss draws (same formulas, same retry-draw accounting),
    identical burst handling, identical response synthesis.  No shared
    state is mutated, so chunks can run in any process or thread.
    """
    if ctx is None:
        ctx = _ScanContext(scanner, day, qname)
    internet = scanner._internet
    plan = scanner._fault_plan
    if len(scanner._blocklist):
        is_blocked = scanner._blocklist.is_blocked
        scannable = [target for target in targets if not is_blocked(target)]
    else:
        scannable = list(targets)

    result = ChunkResult()
    result.count = len(scannable)
    if keep_scannable:
        result.scannable = scannable

    attempts = ctx.attempts
    threshold16 = ctx.threshold16
    loss_threshold = ctx.loss_threshold
    fast_inner = ctx.fast_inner
    udp_inner = ctx.udp_inner
    burst_lost = None if plan is None else plan.burst_lost
    inject = internet.gfw.inject_prepared
    inject_possible = ctx.inject_possible
    gfw_era = ctx.gfw_era
    crosses = internet.gfw._boundary.crosses
    crosses_cache: Dict[Optional[int], bool] = {}
    mday = ctx.mday
    resolved = ctx.resolved
    is_control = ctx.is_control
    fast0, fast1, fast2, fast3 = result.fast_responders
    udp_hits = result.udp_hits
    control_log = result.control_log
    burst_targets = 0
    fast_draws = 0
    udp_draws = 0

    for target, mask, asn, behavior in internet.probe_batch(scannable, day, qname):
        if burst_lost is not None and burst_lost(target, day):
            burst_targets += 1
            continue
        base = (target & _M64) ^ (target >> 64)

        # fast protocols: four probes drawn from disjoint 16-bit slices
        # of one 64-bit hash (exactly ZMapScanner.scan_all_protocols)
        if mask:
            if threshold16:
                surviving = 0
                for attempt in range(attempts):
                    value = (base ^ fast_inner[attempt]) & _M64
                    value = ((value ^ (value >> 30)) * _MIX_C1) & _M64
                    value = ((value ^ (value >> 27)) * _MIX_C2) & _M64
                    draw = value ^ (value >> 31)
                    if (draw & 0xFFFF) >= threshold16:
                        surviving |= 1
                    if ((draw >> 16) & 0xFFFF) >= threshold16:
                        surviving |= 2
                    if ((draw >> 32) & 0xFFFF) >= threshold16:
                        surviving |= 4
                    if ((draw >> 48) & 0xFFFF) >= threshold16:
                        surviving |= 8
                    if surviving == 0b1111:
                        break
                fast_draws += attempt
            else:
                surviving = 0b1111
            if surviving & 1 and mask & 1:  # ICMP
                fast0.append(target)
            if surviving & 2 and mask & 2:  # TCP80
                fast1.append(target)
            if surviving & 4 and mask & 4:  # TCP443
                fast2.append(target)
            if surviving & 8 and mask & 16:  # UDP443
                fast3.append(target)

        # UDP/53: loss is drawn for every non-burst target (the GFW can
        # inject even when the target itself is dead) — ZMapScanner._lost
        if loss_threshold:
            lost = True
            for attempt in range(attempts):
                value = (base ^ udp_inner[attempt]) & _M64
                value = ((value ^ (value >> 30)) * _MIX_C1) & _M64
                value = ((value ^ (value >> 27)) * _MIX_C2) & _M64
                if (value ^ (value >> 31)) >= loss_threshold:
                    udp_draws += attempt
                    lost = False
                    break
            else:
                udp_draws += attempts - 1
            if lost:
                continue

        responses: Optional[List[DnsResponse]] = None
        if inject_possible:
            crossing = crosses_cache.get(asn)
            if crossing is None:
                crossing = crosses(asn)
                crosses_cache[asn] = crossing
            if crossing:
                responses = inject(target, qname, day, gfw_era)

        if behavior is not None:
            # genuine answer — SimInternet._answer_as, with the control
            # NS log collected locally instead of appended live
            if behavior in _REFUSED_BEHAVIORS:
                genuine = DnsResponse(
                    responder=target, qname=qname, status=DnsStatus.REFUSED
                )
            elif behavior is DnsBehavior.REFERRAL:
                genuine = DnsResponse(
                    responder=target, qname=qname, status=DnsStatus.NOERROR,
                    answers=ctx.referral_answers,
                )
            elif behavior is DnsBehavior.BROKEN:
                value = (target ^ mday) & _M64
                value = ((value ^ (value >> 30)) * _MIX_C1) & _M64
                value = ((value ^ (value >> 27)) * _MIX_C2) & _M64
                if (value ^ (value >> 31)) % 2:
                    genuine = DnsResponse(
                        responder=target, qname=qname, status=DnsStatus.SERVFAIL
                    )
                else:
                    genuine = DnsResponse(
                        responder=target, qname=qname,
                        status=DnsStatus.NOERROR, answers=ctx.broken_answers,
                    )
            elif not resolved:
                genuine = DnsResponse(
                    responder=target, qname=qname, status=DnsStatus.NXDOMAIN
                )
            else:
                if is_control:
                    egress = target
                    if behavior is DnsBehavior.PROXY_RESOLVER:
                        egress = target ^ mix64(target) & 0xFFFF
                    control_log.append((qname, egress))
                genuine = DnsResponse(
                    responder=target, qname=qname, status=DnsStatus.NOERROR,
                    answers=ctx.answers,
                )
            if responses is None:
                responses = [genuine]
            else:
                responses.append(genuine)

        if responses:
            udp_hits.append((target, tuple(responses)))

    result.burst_targets = burst_targets
    result.fast_retry_draws = fast_draws
    result.udp_retry_draws = udp_draws
    return result


def _worker_scan_chunk(
    targets: Sequence[int], day: int, qname: str, keep_scannable: bool
) -> ChunkResult:
    """Pool-worker entry point; probes via the inherited scanner."""
    return _scan_chunk(_WORKER_SCANNER, targets, day, qname, None, keep_scannable)


class ScanEngine:
    """Runs the fused five-protocol scan, optionally sharded over workers.

    ``workers=1`` (the default) runs chunks inline; larger values shard
    chunks over a ``concurrent.futures`` pool — forked processes where
    the platform supports it (workers inherit the simulated world
    copy-on-write), threads otherwise.  Results are identical either
    way; see the module docstring for the determinism contract.
    """

    def __init__(
        self,
        scanner: "ZMapScanner",
        workers: int = 1,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self._scanner = scanner
        self._workers = workers
        self._chunk_size = chunk_size
        self._tracer = tracer
        self._executor = None
        self._m_chunks = None
        if metrics is not None:
            # volatile: the chunk count tracks scan_chunk_size, a host
            # tuning knob that checkpoints deliberately do not carry
            self._m_chunks = metrics.counter(
                "repro_engine_chunks_total",
                "Fused scan chunks processed by the scan engine.",
                volatile=True)
            self._m_fused_targets = metrics.counter(
                "repro_engine_fused_targets_total",
                "Targets answered by the fused ground-truth pass.")
            self._m_chunk_seconds = metrics.histogram(
                "repro_engine_chunk_seconds",
                "Wall-clock duration per scan-engine chunk.", volatile=True)

    @property
    def workers(self) -> int:
        """Configured worker count (1 = inline)."""
        return self._workers

    # ------------------------------------------------------------------
    # worker pool

    def _ensure_executor(self):
        if self._executor is None:
            global _WORKER_SCANNER
            # the global must point at our scanner when the pool's
            # workers are created: with a fork context all workers are
            # forked on first submit, inheriting the world copy-on-write
            _WORKER_SCANNER = self._scanner
            import multiprocessing
            from concurrent.futures import (
                ProcessPoolExecutor, ThreadPoolExecutor,
            )

            if "fork" in multiprocessing.get_all_start_methods():
                self._executor = ProcessPoolExecutor(
                    max_workers=self._workers,
                    mp_context=multiprocessing.get_context("fork"),
                )
            else:  # pragma: no cover - non-fork platforms
                self._executor = ThreadPoolExecutor(max_workers=self._workers)
        return self._executor

    def close(self) -> None:
        """Shut down the worker pool (idempotent; pool re-opens on use)."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    # ------------------------------------------------------------------
    # scanning

    def scan_all_protocols(
        self, targets: Sequence[int], day: int, qname: str
    ) -> Tuple[Dict[Protocol, "ScanResult"], "Udp53Result"]:
        """Fused scan of all five hitlist protocols over one target set.

        Drop-in equivalent of ``ZMapScanner.scan_all_protocols`` —
        identical responder sets, metric totals, retry/burst accounting
        and control-NS log, for any ``workers``/``chunk_size``.
        """
        from repro.scan.zmap import ScanResult, Udp53Result

        scanner = self._scanner
        plan = scanner._fault_plan
        udp53 = Udp53Result(day=day, qname=qname)
        if plan is not None and plan.vantage_down(day):
            empty = {
                protocol: ScanResult(
                    protocol=protocol, day=day, targets=0, responders=frozenset()
                )
                for protocol in FAST_PROTOCOLS
            }
            return empty, udp53

        if not isinstance(targets, list):
            targets = list(targets)
        limited = plan is not None and any(
            plan.limits_protocol(protocol)
            for protocol in (*FAST_PROTOCOLS, Protocol.UDP53)
        )
        chunk_size = self._chunk_size
        chunks = [
            targets[start:start + chunk_size]
            for start in range(0, len(targets), chunk_size)
        ]
        chunk_results = self._run_chunks(chunks, day, qname, limited)

        # deterministic merge, in chunk order
        fast_sets: List[set] = [set(), set(), set(), set()]
        count = 0
        burst_targets = 0
        fast_draws = 0
        udp_draws = 0
        scannable: Optional[List[int]] = [] if limited else None
        control_entries: List[Tuple[str, int]] = []
        for chunk_result in chunk_results:
            count += chunk_result.count
            burst_targets += chunk_result.burst_targets
            fast_draws += chunk_result.fast_retry_draws
            udp_draws += chunk_result.udp_retry_draws
            for found, responders in zip(fast_sets, chunk_result.fast_responders):
                found.update(responders)
            for target, responses in chunk_result.udp_hits:
                udp53.responders.add(target)
                udp53.responses[target] = responses
            control_entries.extend(chunk_result.control_log)
            if scannable is not None:
                scannable.extend(chunk_result.scannable)
        udp53.targets = count
        log = scanner._internet.control_ns_log
        for logged_qname, egress in control_entries:
            log.append(ControlNsQuery(qname=logged_qname, source=egress))

        # per-AS rate limiting needs the full probed list, so it runs
        # after the merge (identical to the legacy per-scan ordering)
        rate_limited: Dict[Protocol, int] = {}
        udp_rate_limited = 0
        if limited and scannable is not None:
            internet = scanner._internet

            def origin(address: int) -> Optional[int]:
                return internet.origin_as(address, day)

            for index, protocol in enumerate(FAST_PROTOCOLS):
                if plan.limits_protocol(protocol):
                    suppressed = plan.suppressed_responders(
                        scannable, protocol, day, origin
                    )
                    rate_limited[protocol] = len(fast_sets[index] & suppressed)
                    fast_sets[index] -= suppressed
            if plan.limits_protocol(Protocol.UDP53):
                for address in plan.suppressed_responders(
                    scannable, Protocol.UDP53, day, origin
                ):
                    if address in udp53.responders:
                        udp_rate_limited += 1
                    udp53.responders.discard(address)
                    udp53.responses.pop(address, None)

        self._flush_metrics(
            count, burst_targets, fast_draws + udp_draws, fast_sets,
            udp53, rate_limited, udp_rate_limited, len(chunks),
        )
        results = {
            protocol: ScanResult(
                protocol=protocol, day=day, targets=count,
                responders=frozenset(fast_sets[index]),
            )
            for index, protocol in enumerate(FAST_PROTOCOLS)
        }
        return results, udp53

    def _run_chunks(
        self, chunks: List[List[int]], day: int, qname: str, limited: bool
    ) -> List[ChunkResult]:
        scanner = self._scanner
        tracer = self._tracer
        observe = (
            self._m_chunk_seconds.observe if self._m_chunks is not None else None
        )
        results: List[ChunkResult] = []
        if self._workers == 1 or len(chunks) <= 1:
            ctx = _ScanContext(scanner, day, qname) if chunks else None
            for index, chunk in enumerate(chunks):
                start = time.perf_counter()
                if tracer is not None:
                    with tracer.span("probe-chunk", day=day, chunk=index):
                        results.append(
                            _scan_chunk(scanner, chunk, day, qname, ctx, limited)
                        )
                else:
                    results.append(
                        _scan_chunk(scanner, chunk, day, qname, ctx, limited)
                    )
                if observe is not None:
                    observe(time.perf_counter() - start)
            return results
        executor = self._ensure_executor()
        futures = [
            executor.submit(_worker_scan_chunk, chunk, day, qname, limited)
            for chunk in chunks
        ]
        for index, future in enumerate(futures):
            # parent-side wait per chunk: overlapping worker time shows
            # up as near-zero waits on all but the slowest chunk
            start = time.perf_counter()
            if tracer is not None:
                with tracer.span("probe-chunk", day=day, chunk=index):
                    results.append(future.result())
            else:
                results.append(future.result())
            if observe is not None:
                observe(time.perf_counter() - start)
        return results

    def _flush_metrics(
        self,
        count: int,
        burst_targets: int,
        retry_draws: int,
        fast_sets: List[set],
        udp53: "Udp53Result",
        rate_limited: Dict[Protocol, int],
        udp_rate_limited: int,
        chunk_count: int,
    ) -> None:
        """Identical counter totals to the legacy two-stage flush."""
        scanner = self._scanner
        scanner.probes_sent += 5 * count
        if self._m_chunks is not None:
            self._m_chunks.inc(chunk_count)
            self._m_fused_targets.inc(count)
        if scanner._metrics is None:
            return
        if retry_draws:
            scanner._m_retries.inc(retry_draws)
        if burst_targets:
            # four fast probes plus the UDP/53 probe per burst target
            scanner._m_burst.inc(5 * burst_targets)
        for index, protocol in enumerate(FAST_PROTOCOLS):
            scanner._m_probes.labels(protocol=protocol.label).inc(count)
            scanner._m_hits.labels(protocol=protocol.label).inc(
                len(fast_sets[index])
            )
            if rate_limited.get(protocol):
                scanner._m_rate_limited.labels(protocol=protocol.label).inc(
                    rate_limited[protocol]
                )
        udp_label = Protocol.UDP53.label
        scanner._m_probes.labels(protocol=udp_label).inc(count)
        scanner._m_hits.labels(protocol=udp_label).inc(len(udp53.responders))
        if udp_rate_limited:
            scanner._m_rate_limited.labels(protocol=udp_label).inc(
                udp_rate_limited
            )


def apd_probe_pass(
    scanner: "ZMapScanner",
    prefix_probes: Sequence[Tuple[object, Sequence[int]]],
    day: int,
) -> List[Tuple[set, set]]:
    """Batched ICMP + TCP/80 responder sets for APD probe lists.

    For each ``(prefix, probes)`` pair, replicates exactly what two
    ``ZMapScanner.scan`` calls over ``probes`` produce — same loss
    draws, retry accounting, burst counting, per-prefix rate limiting
    and metric totals — but resolves the ground truth once per probe
    via the fused pass.
    """
    if not prefix_probes:
        return []
    plan = scanner._fault_plan
    if plan is not None and plan.vantage_down(day):
        # scan() returns empty results without touching metrics
        return [(set(), set()) for _ in prefix_probes]
    internet = scanner._internet
    blocklist = scanner._blocklist
    has_blocklist = len(blocklist) > 0
    is_blocked = blocklist.is_blocked
    seed = scanner._seed
    attempts = scanner._retry_attempts
    loss_threshold = scanner._loss_threshold
    icmp_inner = tuple(
        mix64(
            (day << 8) ^ int(Protocol.ICMP) ^ seed
            ^ ((attempt * RETRY_SALT) & _M64)
        )
        for attempt in range(attempts)
    )
    tcp_inner = tuple(
        mix64(
            (day << 8) ^ int(Protocol.TCP80) ^ seed
            ^ ((attempt * RETRY_SALT) & _M64)
        )
        for attempt in range(attempts)
    )
    limited_icmp = plan is not None and plan.limits_protocol(Protocol.ICMP)
    limited_tcp = plan is not None and plan.limits_protocol(Protocol.TCP80)
    burst_lost = None if plan is None else plan.burst_lost

    def origin(address: int) -> Optional[int]:
        return internet.origin_as(address, day)

    metrics = scanner._metrics
    if metrics is not None:
        icmp_label = Protocol.ICMP.label
        tcp_label = Protocol.TCP80.label
        m_probes = (
            scanner._m_probes.labels(protocol=icmp_label),
            scanner._m_probes.labels(protocol=tcp_label),
        )
        m_hits = (
            scanner._m_hits.labels(protocol=icmp_label),
            scanner._m_hits.labels(protocol=tcp_label),
        )
    out: List[Tuple[set, set]] = []
    for _prefix, probes in prefix_probes:
        if has_blocklist:
            scannable = [probe for probe in probes if not is_blocked(probe)]
        else:
            scannable = list(probes)
        icmp_responders: set = set()
        tcp_responders: set = set()
        burst_suppressed = 0
        icmp_draws = 0
        tcp_draws = 0
        for probe, mask, _asn, _behavior in internet.probe_batch(
            scannable, day, need_dns=False
        ):
            if burst_lost is not None and burst_lost(probe, day):
                burst_suppressed += 1
                continue
            base = (probe & _M64) ^ (probe >> 64)
            for inner, bit, responders, is_icmp in (
                (icmp_inner, 1, icmp_responders, True),
                (tcp_inner, 2, tcp_responders, False),
            ):
                if loss_threshold:
                    lost = True
                    for attempt in range(attempts):
                        value = (base ^ inner[attempt]) & _M64
                        value = ((value ^ (value >> 30)) * _MIX_C1) & _M64
                        value = ((value ^ (value >> 27)) * _MIX_C2) & _M64
                        if (value ^ (value >> 31)) >= loss_threshold:
                            if is_icmp:
                                icmp_draws += attempt
                            else:
                                tcp_draws += attempt
                            lost = False
                            break
                    else:
                        if is_icmp:
                            icmp_draws += attempts - 1
                        else:
                            tcp_draws += attempts - 1
                    if lost:
                        continue
                if mask & bit:
                    responders.add(probe)
        rate_limited_icmp = 0
        rate_limited_tcp = 0
        if limited_icmp:
            suppressed = plan.suppressed_responders(
                scannable, Protocol.ICMP, day, origin
            )
            rate_limited_icmp = len(icmp_responders & suppressed)
            icmp_responders -= suppressed
        if limited_tcp:
            suppressed = plan.suppressed_responders(
                scannable, Protocol.TCP80, day, origin
            )
            rate_limited_tcp = len(tcp_responders & suppressed)
            tcp_responders -= suppressed
        count = len(scannable)
        scanner.probes_sent += 2 * count
        if metrics is not None:
            total_draws = icmp_draws + tcp_draws
            if total_draws:
                scanner._m_retries.inc(total_draws)
            if burst_suppressed:
                # each burst swallows both the ICMP and the TCP/80 probe
                scanner._m_burst.inc(2 * burst_suppressed)
            for index, (hits, limited_count) in enumerate((
                (icmp_responders, rate_limited_icmp),
                (tcp_responders, rate_limited_tcp),
            )):
                m_probes[index].inc(count)
                m_hits[index].inc(len(hits))
                if limited_count:
                    label = icmp_label if index == 0 else tcp_label
                    scanner._m_rate_limited.labels(protocol=label).inc(
                        limited_count
                    )
        out.append((icmp_responders, tcp_responders))
    return out
