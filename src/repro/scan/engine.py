"""Batched, shard-parallel scan engine (the ZMap speed lesson).

The per-scan hot path used to walk the ground truth two to three times
per target: ``scan_all_protocols`` resolved the response mask, then
``scan_udp53`` re-checked the blocklist and re-resolved region/host per
target, and ``dns_probe`` looked up the origin AS again.  The engine
fuses all of it into one pass:

* :meth:`SimInternet.probe_batch_arrays` answers response mask, origin
  AS and genuine-DNS behavior for a whole chunk in a single column-
  oriented ground-truth walk;
* per-target SplitMix64 loss/retry/injection draws run as bulk big-int
  SIMD over 128-bit lanes (:mod:`repro.scan.vecmix`) instead of one
  finalizer chain per target;
* target chunks can be sharded across a warm ``concurrent.futures``
  worker pool (opt-in via ``ServiceSettings.scan_workers`` /
  ``--scan-workers``).

The parallel path is built for cheap IPC: the target pool is published
to the workers once per scan through a shared anonymous mmap written
before the fork, tasks carry only ``(start, stop)`` index ranges, and each
chunk returns a :class:`repro.scan.wire.PackedChunkResult` of integer-
coded indices that the parent decodes during the in-order merge.  The
pool is forked once (``warm()``) and stays warm across every scan of a
campaign; each pool binds its scanner through the executor initializer,
so two live engines in one process cannot clobber each other.

Determinism contract (what checkpoint/resume and the deterministic
metric families depend on): the chunk partition is fixed by
``chunk_size`` alone, every chunk is a pure function of (scanner
configuration, targets, day, qname), and chunk results are merged in
chunk order — so responder sets, metric counter totals, the
control-domain NS log and checkpoint bytes are byte-identical for any
worker count, including ``workers=1``.
"""

from __future__ import annotations

import time
from array import array
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro._util import mix64
from repro.net.teredo import TEREDO_PREFIX
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer
from repro.protocols import DnsAnswer, DnsResponse, DnsStatus, Protocol, RecordType
from repro.runtime.faults import RETRY_SALT
from repro.scan import wire
from repro.scan.vecmix import bulk_mix64_xor, lane_kit, pack_lanes, survive16, survive64, unpack_lanes
from repro.scan.wire import PackedChunkResult
from repro.simnet.gfwsim import _TEREDO_SERVERS, InjectionMode
from repro.simnet.hosts import DnsBehavior
from repro.simnet.internet import ControlNsQuery

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.scan.scheduler import CarriedScan
    from repro.scan.zmap import ScanResult, Udp53Result, ZMapScanner

_M64 = 0xFFFFFFFFFFFFFFFF
# SplitMix64 finalizer constants (kept in sync with repro._util.mix64,
# inlined in the remaining scalar loops below)
_MIX_C1 = 0xBF58476D1CE4E5B9
_MIX_C2 = 0x94D049BB133111EB
_FAST_SALT = 0x5CA11
_TEREDO_BASE = TEREDO_PREFIX.value

#: the four cheap protocols probed from one fused 64-bit loss draw, in
#: 16-bit-slice order (must match ``ZMapScanner.scan_all_protocols``)
FAST_PROTOCOLS = (Protocol.ICMP, Protocol.TCP80, Protocol.TCP443, Protocol.UDP443)

#: default shard size; small enough to keep worker queues busy on the
#: default scenario, large enough that per-chunk overhead is noise
DEFAULT_CHUNK_SIZE = 4096

#: initial shared-pool capacity: 4 MiB holds 256k packed targets, so the
#: default scenario never re-forks after the first sizing
_MIN_POOL_BYTES = 1 << 22

_REFUSED_BEHAVIORS = (DnsBehavior.NOT_DNS, DnsBehavior.AUTH_OR_CLOSED)

#: DnsBehavior -> wire.GENUINE_* code for the behaviors whose response
#: variant does not depend on per-target draws or qname resolution
_BEHAVIOR_CODE = {
    DnsBehavior.NOT_DNS: wire.GENUINE_REFUSED,
    DnsBehavior.AUTH_OR_CLOSED: wire.GENUINE_REFUSED,
    DnsBehavior.REFERRAL: wire.GENUINE_REFERRAL,
}


class _ScanContext:
    """Per-(scanner, day, qname) constants hoisted out of the hot loop."""

    __slots__ = (
        "attempts", "loss_threshold", "threshold16", "fast_inner",
        "udp_inner", "inject_possible", "gfw_era", "resolved", "answers",
        "is_control", "mday", "referral_answers", "broken_answers",
        "inject_day_hash", "burst_cut", "inj_wide", "inj_ranges",
    )

    def __init__(self, scanner: "ZMapScanner", day: int, qname: str) -> None:
        internet = scanner._internet
        seed = scanner._seed
        self.attempts = scanner._retry_attempts
        self.loss_threshold = scanner._loss_threshold
        self.threshold16 = int(scanner._loss_rate * 65536.0)
        # inner mix64 of the loss formulas: constant per (day, attempt)
        self.fast_inner = tuple(
            mix64((day << 8) ^ seed ^ _FAST_SALT ^ ((attempt * RETRY_SALT) & _M64))
            for attempt in range(self.attempts)
        )
        self.udp_inner = tuple(
            mix64(
                (day << 8) ^ int(Protocol.UDP53) ^ seed
                ^ ((attempt * RETRY_SALT) & _M64)
            )
            for attempt in range(self.attempts)
        )
        gfw = internet.gfw
        self.gfw_era = gfw.active_era(day)
        self.inject_possible = (
            self.gfw_era is not None and gfw.is_blocked(qname)
        )
        # injection-draw constants (GreatFirewall.inject_prepared, hoisted)
        self.inject_day_hash = mix64(day ^ gfw._seed)
        # kept as float: inject_prepared compares the modulus against
        # probability*1e6 unrounded, and the boundary draw must agree
        self.burst_cut = gfw._burst_probability * 1_000_000
        self.inj_wide = (
            self.gfw_era is not None
            and self.gfw_era.mode is not InjectionMode.A_RECORD
        )
        self.inj_ranges = tuple(
            (base, (1 << (32 - length)) - 1)
            for base, length, _owner in gfw._pool.ranges
        )
        self.resolved = internet.resolve_name(qname)
        self.answers = tuple(
            DnsAnswer(rtype=RecordType.AAAA, address=address)
            for address in self.resolved
        )
        self.is_control = internet._is_control_name(qname)
        self.mday = mix64(day)
        self.referral_answers = (
            DnsAnswer(rtype=RecordType.NS, target="a.root-servers.net"),
        )
        self.broken_answers = (DnsAnswer(rtype=RecordType.AAAA, address=1),)


def _scan_chunk_packed(
    scanner: "ZMapScanner",
    targets: Sequence[int],
    base_index: int,
    day: int,
    qname: str,
    ctx: _ScanContext,
    keep_scannable: bool,
    crosses_cache: Dict[Optional[int], bool],
) -> PackedChunkResult:
    """Fused five-protocol scan of one chunk — a pure function.

    Replicates ``scan_all_protocols`` + ``scan_udp53`` bit for bit:
    identical loss draws (same formulas, same retry-draw accounting),
    identical burst handling, identical injection draw sequence.  The
    chunk covers pool positions ``base_index .. base_index +
    len(targets)``; all emitted indices are pool-global.  Only
    ``crosses_cache`` (a memo of the pure ``GfwBoundary.crosses``) is
    mutated, so chunks can run in any process or thread.
    """
    internet = scanner._internet
    plan = scanner._fault_plan
    result = PackedChunkResult()

    # blocklist filter; live targets keep their pool-global index
    if len(scanner._blocklist):
        is_blocked = scanner._blocklist.is_blocked
        live: List[int] = []
        live_idx: List[int] = []
        flags = bytearray(len(targets))
        for offset, target in enumerate(targets):
            if is_blocked(target):
                continue
            live.append(target)
            live_idx.append(base_index + offset)
            flags[offset] = 1
        if keep_scannable:
            result.scannable_bits = wire.pack_bitmask(flags)
    else:
        live = list(targets)
        live_idx = list(range(base_index, base_index + len(targets)))
        if keep_scannable:
            result.scannable_bits = wire.pack_bitmask(bytes((1,)) * len(targets))
    result.count = len(live)

    # correlated loss bursts kill every probe of a target at once and
    # are not retryable — drop those targets before any draw
    if plan is not None:
        burst_lost = plan.burst_lost
        kept: List[int] = []
        kept_idx: List[int] = []
        for target, gidx in zip(live, live_idx):
            if burst_lost(target, day):
                result.burst_targets += 1
            else:
                kept.append(target)
                kept_idx.append(gidx)
        live, live_idx = kept, kept_idx

    n = len(live)
    if n == 0:
        return result

    masks, asns, behaviors = internet.probe_batch_arrays(live, day, qname)

    # bulk SplitMix64: one 64-bit base per target, padded to a
    # power-of-two lane count so the LaneKit memo stays tiny
    attempts = ctx.attempts
    threshold16 = ctx.threshold16
    loss_threshold = ctx.loss_threshold
    size = 1 << (n - 1).bit_length() if n > 1 else 1
    kit = lane_kit(size)
    bases = [(target & _M64) ^ (target >> 64) for target in live]
    if size != n:
        bases.extend([0] * (size - n))
    packed = pack_lanes(bases)

    if threshold16:
        nibs = [
            survive16(bulk_mix64_xor(packed, inner, kit), threshold16, kit)
            for inner in ctx.fast_inner
        ]
        nib0 = nibs[0]
    else:
        nib0 = b"\x0f" * n
        nibs = [nib0]
    if loss_threshold:
        oks = [
            survive64(bulk_mix64_xor(packed, inner, kit), loss_threshold, kit)
            for inner in ctx.udp_inner
        ]
        ok0 = oks[0]
    else:
        ok0 = b"\x01" * n
        oks = [ok0]

    inject_possible = ctx.inject_possible
    if inject_possible:
        inj_draws = unpack_lanes(
            bulk_mix64_xor(packed, ctx.inject_day_hash, kit), kit
        )
        crosses = internet.gfw._boundary.crosses
        burst_cut = ctx.burst_cut
        result.inj_wide = ctx.inj_wide
        inj_xor: List[int] = []

    # genuine-DNS variant codes that need no per-target work
    behavior_code = _BEHAVIOR_CODE
    open_code = (
        wire.GENUINE_NOERROR if ctx.resolved else wire.GENUINE_NXDOMAIN
    )
    control_flag = wire.FLAG_CONTROL if ctx.is_control else 0
    mday = ctx.mday
    single = attempts == 1

    fast0, fast1, fast2, fast3 = result.fast_idx
    f0_append = fast0.append
    f1_append = fast1.append
    f2_append = fast2.append
    f3_append = fast3.append
    udp_idx_append = result.udp_idx.append
    udp_meta_append = result.udp_meta.append
    inj_counts_append = result.inj_counts.append
    fast_draws = 0
    udp_draws = 0

    for i, (gidx, target, mask, behavior, s, ok) in enumerate(
        zip(live_idx, live, masks, behaviors, nib0, ok0)
    ):
        # fast protocols: four probes drawn from disjoint 16-bit slices
        # of one 64-bit hash (exactly ZMapScanner.scan_all_protocols)
        if mask:
            if not single and threshold16 and s != 0b1111:
                for attempt in range(1, attempts):
                    s |= nibs[attempt][i]
                    if s == 0b1111:
                        fast_draws += attempt
                        break
                else:
                    fast_draws += attempts - 1
            if s & 1 and mask & 1:  # ICMP
                f0_append(gidx)
            if s & 2 and mask & 2:  # TCP80
                f1_append(gidx)
            if s & 4 and mask & 4:  # TCP443
                f2_append(gidx)
            if s & 8 and mask & 16:  # UDP443
                f3_append(gidx)

        # UDP/53: loss is drawn for every non-burst target (the GFW can
        # inject even when the target itself is dead) — ZMapScanner._lost
        if not ok:
            lost = True
            for attempt in range(1, attempts):
                if oks[attempt][i]:
                    udp_draws += attempt
                    lost = False
                    break
            else:
                udp_draws += attempts - 1
            if lost:
                continue

        meta = 0
        if inject_possible:
            asn = asns[i]
            crossing = crosses_cache.get(asn)
            if crossing is None:
                crossing = crosses(asn)
                crosses_cache[asn] = crossing
            if crossing:
                meta = wire.FLAG_INJECTED
                base_draw = inj_draws[i]
                count = 2 + base_draw % 2  # two or three injectors answer
                if (base_draw >> 32) % 1_000_000 < burst_cut:
                    count = 64 + base_draw % 400  # rare pathological bursts
                inj_counts_append(count)
                inj_xor.append((base_draw, count))

        if behavior is not None:
            code = behavior_code.get(behavior)
            if code is not None:
                meta |= code
            elif behavior is DnsBehavior.BROKEN:
                # SimInternet._answer_as: parity of mix64(target ^ mix64(day))
                value = (target ^ mday) & _M64
                value = ((value ^ (value >> 30)) * _MIX_C1) & _M64
                value = ((value ^ (value >> 27)) * _MIX_C2) & _M64
                if (value ^ (value >> 31)) % 2:
                    meta |= wire.GENUINE_SERVFAIL
                else:
                    meta |= wire.GENUINE_BROKEN_ANSWER
            else:  # open / proxy resolver
                meta |= open_code
                if open_code == wire.GENUINE_NOERROR and control_flag:
                    meta |= control_flag
                    if behavior is DnsBehavior.PROXY_RESOLVER:
                        meta |= wire.FLAG_PROXY

        if meta:
            udp_idx_append(gidx)
            udp_meta_append(meta)

    result.fast_retry_draws = fast_draws
    result.udp_retry_draws = udp_draws

    # second bulk pass: the per-response injection draws.  The draw for
    # response k of a target is mix64(base_draw ^ (k+1)) — flatten all
    # (target, k) pairs, mix them in lanes, then map draws to payload
    # ints (A-record IPv4s, or full Teredo AAAA addresses as lo/hi).
    if inject_possible and inj_xor:
        flat: List[int] = []
        for base_draw, count in inj_xor:
            flat.extend(base_draw ^ k for k in range(1, count + 1))
        total = len(flat)
        size = 1 << (total - 1).bit_length() if total > 1 else 1
        kit = lane_kit(size)
        if size != total:
            flat.extend([0] * (size - total))
        draws = unpack_lanes(bulk_mix64_xor(pack_lanes(flat), 0, kit), kit)
        ranges = ctx.inj_ranges
        nranges = len(ranges)
        answers_append = result.inj_answers.append
        if result.inj_wide:
            servers = _TEREDO_SERVERS
            for j in range(total):
                draw = draws[j]
                base, host_mask = ranges[draw % nranges]
                ipv4 = base | (draw >> 8) & host_mask
                # inlined encode_teredo (flags=0, fields in range by
                # construction): server/port/client in RFC 4380 layout
                port = 1024 + (draw >> 16) % 60000
                address = (
                    _TEREDO_BASE
                    | (servers[draw % 2] << 64)
                    | ((port ^ 0xFFFF) << 32)
                    | (ipv4 ^ 0xFFFFFFFF)
                )
                answers_append(address & _M64)
                answers_append(address >> 64)
        else:
            for j in range(total):
                draw = draws[j]
                base, host_mask = ranges[draw % nranges]
                answers_append(base | (draw >> 8) & host_mask)
    return result


class _WorkerState:
    """Per-worker bindings: scanner, shared target pool, scan-state memo.

    Created by the parent and handed to every pool worker through the
    executor initializer — under a fork start method the object is
    inherited, never pickled, so it can carry the mmap.  Each engine's
    pool gets its own instance, which is what lets two live engines in
    one process shard correctly (no module-global scanner).
    """

    __slots__ = ("scanner", "pool", "ctx", "ctx_key", "crosses_cache")

    def __init__(self, scanner: "ZMapScanner", pool) -> None:
        self.scanner = scanner
        #: packed target pool: an anonymous shared mmap (process pools)
        #: or the packed bytes themselves (thread fallback)
        self.pool = pool
        self.ctx: Optional[_ScanContext] = None
        self.ctx_key: Optional[Tuple[int, str]] = None
        #: GfwBoundary.crosses memo — day-independent, lives for the
        #: whole campaign
        self.crosses_cache: Dict[Optional[int], bool] = {}


#: the state bound into this *worker process* by the pool initializer;
#: never set in the parent
_WORKER_STATE: Optional[_WorkerState] = None


def _init_worker(state: _WorkerState) -> None:
    global _WORKER_STATE
    _WORKER_STATE = state


def _worker_noop() -> None:
    """Warm-up task: forces the executor to fork its workers now."""
    time.sleep(0.01)


def _scan_range(state: _WorkerState, task: Tuple[int, int, int, str, bool]) -> PackedChunkResult:
    """Scan pool positions ``[start, stop)`` against the bound scanner."""
    start, stop, day, qname, keep_scannable = task
    targets = wire.unpack_pool(state.pool, start, stop)
    key = (day, qname)
    if state.ctx_key != key:
        state.ctx = _ScanContext(state.scanner, day, qname)
        state.ctx_key = key
    return _scan_chunk_packed(
        state.scanner, targets, start, day, qname, state.ctx,
        keep_scannable, state.crosses_cache,
    )


def _worker_scan_range(task: Tuple[int, int, int, str, bool]) -> PackedChunkResult:
    """Process-pool entry point; state was bound by :func:`_init_worker`."""
    return _scan_range(_WORKER_STATE, task)


class ScanEngine:
    """Runs the fused five-protocol scan, optionally sharded over workers.

    ``workers=1`` (the default) runs chunks inline; larger values shard
    ``(start, stop)`` ranges of a shared packed target pool over a warm
    ``concurrent.futures`` pool — forked processes where the platform
    supports it (workers inherit the simulated world copy-on-write),
    threads otherwise.  Results are identical either way; see the module
    docstring for the determinism contract.
    """

    def __init__(
        self,
        scanner: "ZMapScanner",
        workers: int = 1,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        vantage: Optional[str] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self._scanner = scanner
        self._workers = workers
        self._chunk_size = chunk_size
        self._tracer = tracer
        #: fleet member this engine scans for; labels its probe spans so
        #: traces of a multi-vantage campaign attribute chunk time
        self._vantage = vantage
        self._span_attrs = {"vantage": vantage} if vantage is not None else {}
        self._executor = None
        self._pool_mmap = None
        self._pool_capacity = 0
        self._thread_state: Optional[_WorkerState] = None
        #: inline-path scan-state memo (mirrors _WorkerState's)
        self._crosses_cache: Dict[Optional[int], bool] = {}
        #: decode-side memo of injected-answer objects, keyed by
        #: (wide, payload); forged answers repeat heavily across scans
        self._answer_cache: Dict[Tuple[bool, int], DnsAnswer] = {}
        self._m_chunks = None
        if metrics is not None:
            # volatile: the chunk count tracks scan_chunk_size, a host
            # tuning knob that checkpoints deliberately do not carry
            self._m_chunks = metrics.counter(
                "repro_engine_chunks_total",
                "Fused scan chunks processed by the scan engine.",
                volatile=True)
            self._m_fused_targets = metrics.counter(
                "repro_engine_fused_targets_total",
                "Targets answered by the fused ground-truth pass.")
            self._m_chunk_seconds = metrics.histogram(
                "repro_engine_chunk_seconds",
                "Wall-clock duration per scan-engine chunk.", volatile=True)
            # volatile: both track scan_workers, a host tuning knob
            self._m_ipc_bytes = metrics.counter(
                "repro_engine_ipc_bytes_total",
                "Worker-pool IPC payload bytes: packed pool publications "
                "plus packed chunk results.", volatile=True)
            self._m_pool_forks = metrics.counter(
                "repro_engine_pool_forks_total",
                "Scan-engine worker processes started (pool creations x "
                "workers; >workers means the shared pool was regrown).",
                volatile=True)

    @property
    def workers(self) -> int:
        """Configured worker count (1 = inline)."""
        return self._workers

    # ------------------------------------------------------------------
    # worker pool

    def warm(self, expected_targets: int = 0) -> None:
        """Fork the worker pool now instead of lazily at the first scan.

        Call once after world build with the expected pool size; the
        shared target buffer is sized so campaign growth never forces a
        mid-run re-fork.  Idempotent; a no-op for ``workers=1``.
        """
        if self._workers > 1:
            self._ensure_executor(expected_targets * wire.TARGET_BYTES)

    def _ensure_executor(self, min_pool_bytes: int = 0):
        """The warm executor, (re)forking only when capacity grew."""
        needed = max(min_pool_bytes, _MIN_POOL_BYTES)
        if self._executor is not None and needed <= self._pool_capacity:
            return self._executor
        self.close()
        capacity = 1 << (needed - 1).bit_length()
        import multiprocessing
        from concurrent.futures import (
            ProcessPoolExecutor, ThreadPoolExecutor, wait,
        )

        if "fork" in multiprocessing.get_all_start_methods():
            import mmap

            # anonymous MAP_SHARED memory created before the fork: the
            # parent rewrites it between scans and every worker sees the
            # new bytes without any per-chunk pickling
            self._pool_mmap = mmap.mmap(-1, capacity)
            state = _WorkerState(self._scanner, self._pool_mmap)
            self._executor = ProcessPoolExecutor(
                max_workers=self._workers,
                mp_context=multiprocessing.get_context("fork"),
                initializer=_init_worker,
                initargs=(state,),
            )
            # force the forks now — back-to-back submits spawn the full
            # complement before any worker turns idle, so the campaign
            # never pays fork latency mid-scan
            wait([
                self._executor.submit(_worker_noop)
                for _ in range(self._workers)
            ])
        else:  # pragma: no cover - non-fork platforms
            self._thread_state = _WorkerState(self._scanner, b"")
            self._executor = ThreadPoolExecutor(max_workers=self._workers)
        self._pool_capacity = capacity
        if self._m_chunks is not None:
            self._m_pool_forks.inc(self._workers)
        return self._executor

    def close(self) -> None:
        """Shut down the worker pool (idempotent; pool re-opens on use)."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None
        if self._pool_mmap is not None:
            self._pool_mmap.close()
            self._pool_mmap = None
        self._thread_state = None
        self._pool_capacity = 0

    def _publish_pool(self, packed: bytes) -> None:
        """Make this scan's packed target pool visible to all workers."""
        self._ensure_executor(len(packed))
        if self._pool_mmap is not None:
            self._pool_mmap[0:len(packed)] = packed
        else:  # pragma: no cover - non-fork platforms
            self._thread_state.pool = packed
        if self._m_chunks is not None:
            self._m_ipc_bytes.inc(len(packed))

    # ------------------------------------------------------------------
    # scanning

    def scan_all_protocols(
        self, targets: Sequence[int], day: int, qname: str,
        carried: Optional["CarriedScan"] = None,
    ) -> Tuple[Dict[Protocol, "ScanResult"], "Udp53Result"]:
        """Fused scan of all five hitlist protocols over one target set.

        Drop-in equivalent of ``ZMapScanner.scan_all_protocols`` —
        identical responder sets, metric totals, retry/burst accounting
        and control-NS log, for any ``workers``/``chunk_size``.

        ``carried`` (from the incremental scheduler) folds previously
        probed responders into the merged results without probing them:
        their addresses join the responder sets and target counts after
        the probe metrics flush, so ``repro_probes_sent_total`` reflects
        only real probes.  Carried UDP/53 responders carry no response
        objects — injection re-attribution happens in the scheduler's
        ``absorb`` step.
        """
        from repro.scan.zmap import ScanResult, Udp53Result

        scanner = self._scanner
        plan = scanner._fault_plan
        udp53 = Udp53Result(day=day, qname=qname)
        if plan is not None and plan.vantage_down(day):
            empty = {
                protocol: ScanResult(
                    protocol=protocol, day=day, targets=0, responders=frozenset()
                )
                for protocol in FAST_PROTOCOLS
            }
            return empty, udp53

        if not isinstance(targets, list):
            targets = list(targets)
        limited = plan is not None and any(
            plan.limits_protocol(protocol)
            for protocol in (*FAST_PROTOCOLS, Protocol.UDP53)
        )
        chunk_size = self._chunk_size
        ranges = [
            (start, min(start + chunk_size, len(targets)))
            for start in range(0, len(targets), chunk_size)
        ]
        ctx = _ScanContext(scanner, day, qname) if ranges else None
        chunk_results = self._run_chunks(targets, ranges, day, qname, limited, ctx)

        # deterministic merge, in chunk order
        fast_sets: List[set] = [set(), set(), set(), set()]
        count = 0
        burst_targets = 0
        fast_draws = 0
        udp_draws = 0
        scannable: Optional[List[int]] = [] if limited else None
        control_entries: List[Tuple[str, int]] = []
        getitem = targets.__getitem__
        for (start, stop), chunk_result in zip(ranges, chunk_results):
            count += chunk_result.count
            burst_targets += chunk_result.burst_targets
            fast_draws += chunk_result.fast_retry_draws
            udp_draws += chunk_result.udp_retry_draws
            for found, idx in zip(fast_sets, chunk_result.fast_idx):
                found.update(map(getitem, idx))
            self._decode_udp(chunk_result, targets, ctx, udp53, control_entries)
            if scannable is not None:
                bits = chunk_result.scannable_bits
                for offset in wire.iter_bitmask(bits, stop - start):
                    scannable.append(targets[start + offset])
        udp53.targets = count
        log = scanner._internet.control_ns_log
        for logged_qname, egress in control_entries:
            log.append(ControlNsQuery(qname=logged_qname, source=egress))

        # per-AS rate limiting needs the full probed list, so it runs
        # after the merge (identical to the pre-engine per-scan ordering)
        rate_limited: Dict[Protocol, int] = {}
        udp_rate_limited = 0
        if limited and scannable is not None:
            internet = scanner._internet

            def origin(address: int) -> Optional[int]:
                return internet.origin_as(address, day)

            for index, protocol in enumerate(FAST_PROTOCOLS):
                if plan.limits_protocol(protocol):
                    suppressed = plan.suppressed_responders(
                        scannable, protocol, day, origin
                    )
                    rate_limited[protocol] = len(fast_sets[index] & suppressed)
                    fast_sets[index] -= suppressed
            if plan.limits_protocol(Protocol.UDP53):
                for address in plan.suppressed_responders(
                    scannable, Protocol.UDP53, day, origin
                ):
                    if address in udp53.responders:
                        udp_rate_limited += 1
                    udp53.responders.discard(address)
                    udp53.responses.pop(address, None)

        self._flush_metrics(
            count, burst_targets, fast_draws + udp_draws, fast_sets,
            udp53, rate_limited, udp_rate_limited, len(ranges),
        )
        if carried is not None and carried.targets:
            count += carried.targets
            for found, replayed in zip(fast_sets, carried.fast):
                found |= replayed
            udp53.responders |= carried.udp_responders
            udp53.targets = count
        results = {
            protocol: ScanResult(
                protocol=protocol, day=day, targets=count,
                responders=frozenset(fast_sets[index]),
            )
            for index, protocol in enumerate(FAST_PROTOCOLS)
        }
        return results, udp53

    def _decode_udp(
        self,
        chunk: PackedChunkResult,
        targets: List[int],
        ctx: _ScanContext,
        udp53: "Udp53Result",
        control_entries: List[Tuple[str, int]],
    ) -> None:
        """Synthesize the chunk's UDP/53 hits from the packed wire format.

        Response objects (including injected forgeries) are built here
        in the parent, in target order, exactly as the scalar pass built
        them in place — responder sets, response tuples and control-log
        order are byte-compatible with any worker count.
        """
        udp_idx = chunk.udp_idx
        if not udp_idx:
            return
        qname = udp53.qname
        wide = chunk.inj_wide
        rtype = RecordType.AAAA if wide else RecordType.A
        counts = chunk.inj_counts
        payloads = chunk.inj_answers
        cache = self._answer_cache
        responders_add = udp53.responders.add
        responses_map = udp53.responses
        answers = ctx.answers
        referral_answers = ctx.referral_answers
        broken_answers = ctx.broken_answers
        ci = 0  # cursor into inj_counts
        ai = 0  # cursor into inj_answers slots
        for target_index, meta in zip(udp_idx, chunk.udp_meta):
            target = targets[target_index]
            responses: List[DnsResponse] = []
            if meta & wire.FLAG_INJECTED:
                count = counts[ci]
                ci += 1
                for _ in range(count):
                    if wide:
                        payload = payloads[ai] | (payloads[ai + 1] << 64)
                        ai += 2
                    else:
                        payload = payloads[ai]
                        ai += 1
                    key = (wide, payload)
                    answer = cache.get(key)
                    if answer is None:
                        answer = DnsAnswer(rtype=rtype, address=payload)
                        cache[key] = answer
                    responses.append(DnsResponse(
                        responder=target, qname=qname,
                        status=DnsStatus.NOERROR, answers=(answer,),
                        injected=True,
                    ))
            variant = meta & wire.GENUINE_MASK
            if variant:
                if variant == wire.GENUINE_NOERROR:
                    if meta & wire.FLAG_CONTROL:
                        egress = target
                        if meta & wire.FLAG_PROXY:
                            egress = target ^ mix64(target) & 0xFFFF
                        control_entries.append((qname, egress))
                    genuine = DnsResponse(
                        responder=target, qname=qname,
                        status=DnsStatus.NOERROR, answers=answers,
                    )
                elif variant == wire.GENUINE_REFUSED:
                    genuine = DnsResponse(
                        responder=target, qname=qname, status=DnsStatus.REFUSED
                    )
                elif variant == wire.GENUINE_REFERRAL:
                    genuine = DnsResponse(
                        responder=target, qname=qname,
                        status=DnsStatus.NOERROR, answers=referral_answers,
                    )
                elif variant == wire.GENUINE_SERVFAIL:
                    genuine = DnsResponse(
                        responder=target, qname=qname, status=DnsStatus.SERVFAIL
                    )
                elif variant == wire.GENUINE_BROKEN_ANSWER:
                    genuine = DnsResponse(
                        responder=target, qname=qname,
                        status=DnsStatus.NOERROR, answers=broken_answers,
                    )
                else:  # GENUINE_NXDOMAIN
                    genuine = DnsResponse(
                        responder=target, qname=qname, status=DnsStatus.NXDOMAIN
                    )
                responses.append(genuine)
            responders_add(target)
            responses_map[target] = tuple(responses)

    def _run_chunks(
        self,
        targets: List[int],
        ranges: List[Tuple[int, int]],
        day: int,
        qname: str,
        limited: bool,
        ctx: Optional[_ScanContext],
    ) -> List[PackedChunkResult]:
        scanner = self._scanner
        tracer = self._tracer
        observe = (
            self._m_chunk_seconds.observe if self._m_chunks is not None else None
        )
        results: List[PackedChunkResult] = []
        if self._workers == 1 or len(ranges) <= 1:
            for index, (start, stop) in enumerate(ranges):
                began = time.perf_counter()
                if tracer is not None:
                    with tracer.span(
                        "probe-chunk", day=day, chunk=index, **self._span_attrs
                    ):
                        results.append(_scan_chunk_packed(
                            scanner, targets[start:stop], start, day, qname,
                            ctx, limited, self._crosses_cache,
                        ))
                else:
                    results.append(_scan_chunk_packed(
                        scanner, targets[start:stop], start, day, qname,
                        ctx, limited, self._crosses_cache,
                    ))
                if observe is not None:
                    observe(time.perf_counter() - began)
            return results

        self._publish_pool(wire.pack_pool(targets))
        tasks = [(start, stop, day, qname, limited) for start, stop in ranges]
        # batch submission: the parent wakes up per task *batch*, not per
        # chunk, and tiny (start, stop) tuples are all that gets pickled
        map_chunksize = max(1, -(-len(tasks) // (self._workers * 4)))
        if self._pool_mmap is not None:
            outputs = self._executor.map(
                _worker_scan_range, tasks, chunksize=map_chunksize
            )
        else:  # pragma: no cover - non-fork platforms
            from functools import partial

            outputs = self._executor.map(
                partial(_scan_range, self._thread_state), tasks,
                chunksize=map_chunksize,
            )
        ipc_bytes = 0
        for index, result in enumerate(outputs):
            # parent-side wait per chunk: overlapping worker time shows
            # up as near-zero waits on all but the slowest chunk
            began = time.perf_counter()
            if tracer is not None:
                with tracer.span(
                    "probe-chunk", day=day, chunk=index, **self._span_attrs
                ):
                    results.append(result)
            else:
                results.append(result)
            ipc_bytes += result.nbytes()
            if observe is not None:
                observe(time.perf_counter() - began)
        if self._m_chunks is not None:
            self._m_ipc_bytes.inc(ipc_bytes)
        return results

    def _flush_metrics(
        self,
        count: int,
        burst_targets: int,
        retry_draws: int,
        fast_sets: List[set],
        udp53: "Udp53Result",
        rate_limited: Dict[Protocol, int],
        udp_rate_limited: int,
        chunk_count: int,
    ) -> None:
        """Identical counter totals to the pre-engine two-stage flush."""
        scanner = self._scanner
        scanner.probes_sent += 5 * count
        if self._m_chunks is not None:
            self._m_chunks.inc(chunk_count)
            self._m_fused_targets.inc(count)
        if scanner._metrics is None:
            return
        if retry_draws:
            scanner._m_retries.inc(retry_draws)
        if burst_targets:
            # four fast probes plus the UDP/53 probe per burst target
            scanner._m_burst.inc(5 * burst_targets)
        for index, protocol in enumerate(FAST_PROTOCOLS):
            scanner._m_probes.labels(protocol=protocol.label).inc(count)
            scanner._m_hits.labels(protocol=protocol.label).inc(
                len(fast_sets[index])
            )
            if rate_limited.get(protocol):
                scanner._m_rate_limited.labels(protocol=protocol.label).inc(
                    rate_limited[protocol]
                )
        udp_label = Protocol.UDP53.label
        scanner._m_probes.labels(protocol=udp_label).inc(count)
        scanner._m_hits.labels(protocol=udp_label).inc(len(udp53.responders))
        if udp_rate_limited:
            scanner._m_rate_limited.labels(protocol=udp_label).inc(
                udp_rate_limited
            )


def apd_probe_pass(
    scanner: "ZMapScanner",
    prefix_probes: Sequence[Tuple[object, Sequence[int]]],
    day: int,
) -> List[Tuple[set, set]]:
    """Batched ICMP + TCP/80 responder sets for APD probe lists.

    For each ``(prefix, probes)`` pair, replicates exactly what two
    ``ZMapScanner.scan`` calls over ``probes`` produce — same loss
    draws, retry accounting, burst counting, per-prefix rate limiting
    and metric totals — but resolves the ground truth once per probe
    via the fused pass.
    """
    if not prefix_probes:
        return []
    plan = scanner._fault_plan
    if plan is not None and plan.vantage_down(day):
        # scan() returns empty results without touching metrics
        return [(set(), set()) for _ in prefix_probes]
    internet = scanner._internet
    blocklist = scanner._blocklist
    has_blocklist = len(blocklist) > 0
    is_blocked = blocklist.is_blocked
    seed = scanner._seed
    attempts = scanner._retry_attempts
    loss_threshold = scanner._loss_threshold
    icmp_inner = tuple(
        mix64(
            (day << 8) ^ int(Protocol.ICMP) ^ seed
            ^ ((attempt * RETRY_SALT) & _M64)
        )
        for attempt in range(attempts)
    )
    tcp_inner = tuple(
        mix64(
            (day << 8) ^ int(Protocol.TCP80) ^ seed
            ^ ((attempt * RETRY_SALT) & _M64)
        )
        for attempt in range(attempts)
    )
    limited_icmp = plan is not None and plan.limits_protocol(Protocol.ICMP)
    limited_tcp = plan is not None and plan.limits_protocol(Protocol.TCP80)
    burst_lost = None if plan is None else plan.burst_lost

    def origin(address: int) -> Optional[int]:
        return internet.origin_as(address, day)

    metrics = scanner._metrics
    if metrics is not None:
        icmp_label = Protocol.ICMP.label
        tcp_label = Protocol.TCP80.label
        m_probes = (
            scanner._m_probes.labels(protocol=icmp_label),
            scanner._m_probes.labels(protocol=tcp_label),
        )
        m_hits = (
            scanner._m_hits.labels(protocol=icmp_label),
            scanner._m_hits.labels(protocol=tcp_label),
        )
    out: List[Tuple[set, set]] = []
    for _prefix, probes in prefix_probes:
        if has_blocklist:
            scannable = [probe for probe in probes if not is_blocked(probe)]
        else:
            scannable = list(probes)
        icmp_responders: set = set()
        tcp_responders: set = set()
        burst_suppressed = 0
        icmp_draws = 0
        tcp_draws = 0
        for probe, mask, _asn, _behavior in internet.probe_batch(
            scannable, day, need_dns=False
        ):
            if burst_lost is not None and burst_lost(probe, day):
                burst_suppressed += 1
                continue
            base = (probe & _M64) ^ (probe >> 64)
            for inner, bit, responders, is_icmp in (
                (icmp_inner, 1, icmp_responders, True),
                (tcp_inner, 2, tcp_responders, False),
            ):
                if loss_threshold:
                    lost = True
                    for attempt in range(attempts):
                        value = (base ^ inner[attempt]) & _M64
                        value = ((value ^ (value >> 30)) * _MIX_C1) & _M64
                        value = ((value ^ (value >> 27)) * _MIX_C2) & _M64
                        if (value ^ (value >> 31)) >= loss_threshold:
                            if is_icmp:
                                icmp_draws += attempt
                            else:
                                tcp_draws += attempt
                            lost = False
                            break
                    else:
                        if is_icmp:
                            icmp_draws += attempts - 1
                        else:
                            tcp_draws += attempts - 1
                    if lost:
                        continue
                if mask & bit:
                    responders.add(probe)
        rate_limited_icmp = 0
        rate_limited_tcp = 0
        if limited_icmp:
            suppressed = plan.suppressed_responders(
                scannable, Protocol.ICMP, day, origin
            )
            rate_limited_icmp = len(icmp_responders & suppressed)
            icmp_responders -= suppressed
        if limited_tcp:
            suppressed = plan.suppressed_responders(
                scannable, Protocol.TCP80, day, origin
            )
            rate_limited_tcp = len(tcp_responders & suppressed)
            tcp_responders -= suppressed
        count = len(scannable)
        scanner.probes_sent += 2 * count
        if metrics is not None:
            total_draws = icmp_draws + tcp_draws
            if total_draws:
                scanner._m_retries.inc(total_draws)
            if burst_suppressed:
                # each burst swallows both the ICMP and the TCP/80 probe
                scanner._m_burst.inc(2 * burst_suppressed)
            for index, (hits, limited_count) in enumerate((
                (icmp_responders, rate_limited_icmp),
                (tcp_responders, rate_limited_tcp),
            )):
                m_probes[index].inc(count)
                m_hits[index].inc(len(hits))
                if limited_count:
                    label = icmp_label if index == 0 else tcp_label
                    scanner._m_rate_limited.labels(protocol=label).inc(
                        limited_count
                    )
        out.append((icmp_responders, tcp_responders))
    return out
