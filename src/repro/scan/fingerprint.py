"""TCP fingerprinting of fully responsive prefixes (Sec. 5.1).

Samples addresses inside a prefix, completes TCP handshakes and compares
the features (Optionstext, window size, window scale, MSS, iTTL).  Equal
features do not prove one host, but differing features indicate multiple
hosts; a window-size-only difference is treated as weak evidence because
the window can vary between connections to the same machine.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.net.prefix import IPv6Prefix
from repro.net.random_addr import spread_addresses
from repro.protocols import TcpFingerprint
from repro.simnet.internet import SimInternet


class FingerprintClass(enum.Enum):
    """Verdict for one prefix."""

    NO_TCP = "no_tcp"  # nothing fingerprintable (ICMP-only prefixes)
    UNIFORM = "uniform"  # all sampled features identical
    WINDOW_ONLY = "window_only"  # only the window size differs
    DIVERSE = "diverse"  # stronger features differ: multiple hosts


@dataclass(frozen=True)
class PrefixFingerprint:
    """Fingerprint evidence collected for one prefix."""

    prefix: IPv6Prefix
    verdict: FingerprintClass
    samples: Tuple[TcpFingerprint, ...] = ()

    @property
    def sample_count(self) -> int:
        """Number of handshakes that completed."""
        return len(self.samples)


class TcpFingerprinter:
    """Collects and classifies per-prefix TCP fingerprints."""

    def __init__(self, internet: SimInternet, samples_per_prefix: int = 16) -> None:
        if samples_per_prefix < 2:
            raise ValueError("need at least two samples to compare")
        self._internet = internet
        self._samples = samples_per_prefix

    def fingerprint_prefix(
        self, prefix: IPv6Prefix, day: int, nonce: int = 0
    ) -> PrefixFingerprint:
        """Handshake a spread of addresses inside ``prefix`` and classify."""
        spread = 16 if self._samples <= 16 else self._samples
        candidates = spread_addresses(prefix, spread, nonce=nonce)[: self._samples]
        collected: List[TcpFingerprint] = []
        for address in candidates:
            fingerprint = self._internet.tcp_fingerprint(address, day)
            if fingerprint is not None:
                collected.append(fingerprint)
        if len(collected) < 2:
            return PrefixFingerprint(prefix=prefix, verdict=FingerprintClass.NO_TCP)
        return PrefixFingerprint(
            prefix=prefix,
            verdict=self.classify(collected),
            samples=tuple(collected),
        )

    @staticmethod
    def classify(samples: List[TcpFingerprint]) -> FingerprintClass:
        """Compare collected fingerprints feature-wise."""
        reference = samples[0]
        strong_uniform = all(s.matches(reference, ignore_window=True) for s in samples)
        if not strong_uniform:
            return FingerprintClass.DIVERSE
        if all(s.window_size == reference.window_size for s in samples):
            return FingerprintClass.UNIFORM
        return FingerprintClass.WINDOW_ONLY
