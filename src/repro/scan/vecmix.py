"""Bulk SplitMix64 draws over big-integer SIMD lanes (stdlib only).

The scan engine draws one 64-bit SplitMix64 hash per (target, protocol
group, attempt).  Done per target in Python, the finalizer's two 64-bit
multiplies plus five shift/xor steps dominate the probe stage.  This
module computes the same draws for a whole chunk at once by packing one
64-bit value per *128-bit lane* of a single Python big integer:

* lane spacing of 128 bits means a lane-wise ``value * constant``
  product (< 2**128) never carries into the next lane, so one big-int
  multiplication by a 64-bit constant multiplies every lane at once;
* shifts, xors and masks are plain big-int operations applied to all
  lanes simultaneously;
* ``x >= threshold`` per lane becomes ``(x + (2**k - threshold))`` and
  reading carry bit ``k`` — again a single big-int add per lane set.

Each bulk call replaces ``n`` scalar SplitMix64 evaluations with ~8
big-int operations of ``O(n)`` C-speed work; measured speedup on the
probe stage's draw loops is 2-3x at the default chunk size (4096).

Every function here is bit-exact against :func:`repro._util.mix64`:
``tests/scan/test_vecmix.py`` pins the equivalence property-based, and
the incremental scheduler's replay gate pins it end to end (the carry
store's loss replay must match the engine's draws bit for bit).
"""

from __future__ import annotations

from array import array
from typing import Dict, List

_M64 = 0xFFFFFFFFFFFFFFFF
# SplitMix64 finalizer constants (same values as repro._util.mix64)
_MIX_C1 = 0xBF58476D1CE4E5B9
_MIX_C2 = 0x94D049BB133111EB

#: 128-bit lane width: a 64-bit lane value times a 64-bit constant stays
#: inside its own lane, which is what makes bulk multiplication exact.
LANE_BITS = 128
_LANE_BYTES = LANE_BITS // 8


class LaneKit:
    """Precomputed repeat-constants for ``n`` 128-bit lanes.

    Building the all-lanes masks costs one big division; chunk sizes
    repeat across a scan (every chunk but the last is ``chunk_size``
    targets), so kits are memoized via :func:`lane_kit`.
    """

    __slots__ = ("n", "rep1", "mask64", "rep16", "_reps")

    def __init__(self, n: int) -> None:
        self.n = n
        ones = (1 << (LANE_BITS * n)) - 1
        #: 1 in the lowest bit of every lane
        self.rep1 = ones // ((1 << LANE_BITS) - 1)
        #: 0xFFFF_FFFF_FFFF_FFFF in every lane
        self.mask64 = self.rep1 * _M64
        #: 0xFFFF in every lane
        self.rep16 = self.rep1 * 0xFFFF
        #: memo of other per-lane repeat constants, keyed by constant
        self._reps: Dict[int, int] = {}

    def rep(self, constant: int) -> int:
        """``constant`` replicated into every lane (memoized)."""
        value = self._reps.get(constant)
        if value is None:
            value = self.rep1 * constant
            self._reps[constant] = value
        return value


_KITS: Dict[int, LaneKit] = {}


def lane_kit(n: int) -> LaneKit:
    """The (memoized) :class:`LaneKit` for ``n`` lanes."""
    kit = _KITS.get(n)
    if kit is None:
        kit = LaneKit(n)
        _KITS[n] = kit
    return kit


def pack_lanes(values: List[int]) -> int:
    """Pack 64-bit ``values`` into one big integer, one per 128-bit lane.

    Lane ``i`` (little-endian byte order) holds ``values[i]`` in its low
    64 bits and zeros in the high 64 — the headroom bulk multiplication
    needs.
    """
    raw = array("Q", values).tobytes()
    buf = bytearray(_LANE_BYTES * len(values))
    for k in range(8):
        buf[k::16] = raw[k::8]
    return int.from_bytes(buf, "little")


def unpack_lanes(packed: int, kit: LaneKit) -> array:
    """The low 64 bits of every lane as an ``array('Q')``.

    Inverse of :func:`pack_lanes` for values already masked to 64 bits.
    """
    full = packed.to_bytes(_LANE_BYTES * kit.n, "little")
    raw = bytearray(8 * kit.n)
    for k in range(8):
        raw[k::8] = full[k::16]
    return array("Q", raw)


def bulk_mix64_xor(packed: int, inner: int, kit: LaneKit) -> int:
    """Per lane: ``mix64(lane ^ inner)``, all lanes at once.

    ``inner`` is the scan-constant inner hash (already mixed); the loss
    formulas are ``mix64(base ^ mix64(...))`` with ``base`` per target,
    so this one call is the whole per-target draw.
    """
    mask = kit.mask64
    v = packed ^ kit.rep(inner)
    v = (v ^ (v >> 30)) & mask
    v = (v * _MIX_C1) & mask
    v = (v ^ (v >> 27)) & mask
    v = (v * _MIX_C2) & mask
    return (v ^ (v >> 31)) & mask


def survive16(draws: int, threshold16: int, kit: LaneKit) -> bytes:
    """Per lane, the 4-bit mask of 16-bit draw slices ``>= threshold16``.

    Bit ``f`` of byte ``i`` is set when slice ``f`` (bits ``16f..16f+15``)
    of lane ``i`` survives — exactly the ``surviving`` nibble of the
    scalar fast-protocol loss loop.  ``threshold16`` must be in
    ``[1, 0xFFFF]``.
    """
    rep1 = kit.rep1
    add = kit.rep(0x10000 - threshold16)
    nibbles = 0
    for f in range(4):
        fields = (draws >> (16 * f)) & kit.rep16
        nibbles |= (((fields + add) >> 16) & rep1) << f
    return nibbles.to_bytes(_LANE_BYTES * kit.n, "little")[0::16]


def survive64(draws: int, threshold: int, kit: LaneKit) -> bytes:
    """Per lane, ``0x01`` when the full 64-bit draw ``>= threshold``.

    The UDP/53 survival test; ``threshold`` must be in ``[1, 2**64-1]``.
    """
    shifted = (draws + kit.rep((1 << 64) - threshold)) >> 64
    return (shifted & kit.rep1).to_bytes(_LANE_BYTES * kit.n, "little")[0::16]
