"""DNS scans: zone-wide resolution and the hash-subdomain control experiment.

Two roles from the paper:

* the institutional DNS scans feeding the hitlist (AAAA for >300 M
  domains, plus — new in this work — the NS and MX records resolved to
  their addresses, Sec. 3.2);
* the control experiment of Sec. 4.2: after GFW cleaning, each remaining
  UDP/53 responder is queried for a *unique hash subdomain* of a domain
  we control, so outgoing probes can be correlated with queries arriving
  at our authoritative name server.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set, Tuple

from repro.protocols import DnsStatus, RecordType
from repro.simnet.dnszone import DnsZone
from repro.simnet.internet import SimInternet


@dataclass
class ZoneResolutionResult:
    """Addresses discovered by resolving the domain universe."""

    aaaa_addresses: Set[int] = field(default_factory=set)
    ns_mx_addresses: Set[int] = field(default_factory=set)
    domains_resolved: int = 0
    hosts_resolved: int = 0


@dataclass
class ControlExperimentResult:
    """Per-target classification of the hash-subdomain experiment.

    Mirrors the categories of Sec. 4.2: valid responses with error
    status (authoritative/closed), correct AAAA answers confirmed at our
    name server, referrals, proxy resolvers (answer correct but the
    query reached us from a different address), and broken responders.
    """

    valid_error: Set[int] = field(default_factory=set)
    correct_resolution: Set[int] = field(default_factory=set)
    referral: Set[int] = field(default_factory=set)
    proxy_mismatch: Set[int] = field(default_factory=set)
    broken: Set[int] = field(default_factory=set)
    silent: Set[int] = field(default_factory=set)

    @property
    def responded(self) -> int:
        """Number of targets that answered at all."""
        return (
            len(self.valid_error)
            + len(self.correct_resolution)
            + len(self.referral)
            + len(self.proxy_mismatch)
            + len(self.broken)
        )


class DnsScanner:
    """Resolver-side tooling for both scan roles."""

    def __init__(self, internet: SimInternet, seed: int = 0) -> None:
        self._internet = internet
        self._seed = seed

    # ------------------------------------------------------------------
    # zone-wide resolution (hitlist input source)

    def resolve_zone(self, zone: DnsZone, include_ns_mx: bool = True) -> ZoneResolutionResult:
        """Resolve every domain's AAAA (and optionally NS/MX) records."""
        result = ZoneResolutionResult()
        for domain in zone.domains():
            result.domains_resolved += 1
            result.aaaa_addresses.update(domain.addresses)
            if include_ns_mx:
                for hostname in domain.ns_hosts + domain.mx_hosts:
                    result.ns_mx_addresses.update(zone.resolve_aaaa(hostname))
        if include_ns_mx:
            for _hostname, addresses in zone.host_records():
                result.hosts_resolved += 1
                result.ns_mx_addresses.update(addresses)
        return result

    # ------------------------------------------------------------------
    # hash-subdomain control experiment

    def _hash_name(self, target: int) -> str:
        digest = hashlib.sha256(f"{target:032x}#{self._seed}".encode("ascii")).hexdigest()
        return f"{digest[:16]}.{self._internet.control_domain}"

    def control_experiment(
        self, targets: Iterable[int], day: int
    ) -> ControlExperimentResult:
        """Query each target for its unique control subdomain.

        Classification matches the paper: the name server log is joined
        against outgoing probes via the unique subdomain.
        """
        internet = self._internet
        result = ControlExperimentResult()
        log_start = len(internet.control_ns_log)
        queried: List[Tuple[int, str]] = []
        answers: Dict[int, Tuple] = {}
        for target in targets:
            qname = self._hash_name(target)
            queried.append((target, qname))
            responses = internet.dns_probe(target, qname, day)
            genuine = [response for response in responses if not response.injected]
            if genuine:
                answers[target] = tuple(genuine)

        seen_at_ns: Dict[str, Set[int]] = {}
        for entry in internet.control_ns_log[log_start:]:
            seen_at_ns.setdefault(entry.qname, set()).add(entry.source)

        for target, qname in queried:
            responses = answers.get(target)
            if not responses:
                result.silent.add(target)
                continue
            response = responses[0]
            if response.status in (DnsStatus.REFUSED, DnsStatus.NXDOMAIN):
                result.valid_error.add(target)
            elif response.status is DnsStatus.SERVFAIL:
                result.broken.add(target)
            elif any(answer.rtype is RecordType.NS for answer in response.answers):
                result.referral.add(target)
            elif response.answer_addresses == (internet.control_aaaa,):
                sources = seen_at_ns.get(qname, set())
                if target in sources:
                    result.correct_resolution.add(target)
                else:
                    result.proxy_mismatch.add(target)
            else:
                result.broken.add(target)
        return result
