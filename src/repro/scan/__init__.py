"""Measurement tooling: scanners, traceroute, fingerprinting, TBT.

The counterparts of the paper's toolchain: ZMapv6 (five probe modules),
Yarrp traceroutes, the institutional DNS scans (including the unique-hash
subdomain control experiment of Sec. 4.2), TCP fingerprinting and the
Too Big Trick (Sec. 5.1), plus the request-based blocklist mandated by
the measurement ethics of Sec. 3.3.
"""

from repro.scan.blocklist import Blocklist
from repro.scan.engine import ScanEngine
from repro.scan.scheduler import CarriedScan, IncrementalScheduler, ScanPlan
from repro.scan.zmap import ScanResult, Udp53Result, ZMapScanner
from repro.scan.yarrp import YarrpTracer
from repro.scan.dnsscan import DnsScanner, ControlExperimentResult
from repro.scan.tbt import TbtOutcome, TbtProber, TbtResult
from repro.scan.fingerprint import FingerprintClass, PrefixFingerprint, TcpFingerprinter

__all__ = [
    "Blocklist",
    "CarriedScan",
    "ControlExperimentResult",
    "DnsScanner",
    "FingerprintClass",
    "IncrementalScheduler",
    "PrefixFingerprint",
    "ScanEngine",
    "ScanPlan",
    "ScanResult",
    "TbtOutcome",
    "TbtProber",
    "TbtResult",
    "TcpFingerprinter",
    "Udp53Result",
    "YarrpTracer",
    "ZMapScanner",
]
