"""A ZMapv6-like scanner over the simulated internet.

One probe module per hitlist protocol (ICMP echo, TCP SYN 80/443, UDP
DNS 53, QUIC initial 443).  The scanner adds the real-world artefact the
oracle does not model: per-probe packet loss, deterministic per
(address, protocol, day) so re-running a scan reproduces it while
*different* scans lose different probes — exactly the noise the APD's
merge-with-previous-scans logic exists to absorb.

Like the real ZMap, the UDP/53 module counts **any** DNS response from
the target's address as success — which is precisely how GFW-injected
forgeries poison the hitlist (Sec. 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro._util import mix64
from repro.obs.metrics import MetricsRegistry
from repro.protocols import DnsResponse, Protocol
from repro.runtime.faults import RETRY_SALT, FaultPlan, RetryPolicy
from repro.scan.blocklist import Blocklist
from repro.simnet.internet import SimInternet

_UINT64_SPAN = float(1 << 64)
_M64 = 0xFFFFFFFFFFFFFFFF


@dataclass(frozen=True)
class ScanResult:
    """Outcome of one single-protocol scan."""

    protocol: Protocol
    day: int
    targets: int
    responders: frozenset

    @property
    def hit_rate(self) -> float:
        """Responders per probed target."""
        return len(self.responders) / self.targets if self.targets else 0.0


@dataclass
class Udp53Result:
    """Outcome of a UDP/53 scan, keeping full responses for inspection.

    ``responders`` contains every target ZMap would report as successful;
    ``responses`` maps each responder to the responses received (several
    per target when injectors fire).
    """

    day: int
    qname: str
    targets: int = 0
    responders: Set[int] = field(default_factory=set)
    responses: Dict[int, Tuple[DnsResponse, ...]] = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        """Responders per probed target (parity with :class:`ScanResult`)."""
        return len(self.responders) / self.targets if self.targets else 0.0


class ZMapScanner:
    """Stateless scanner issuing probes through the oracle."""

    def __init__(
        self,
        internet: SimInternet,
        blocklist: Optional[Blocklist] = None,
        loss_rate: float = 0.03,
        seed: int = 0,
        fault_plan: Optional[FaultPlan] = None,
        retry: Optional[RetryPolicy] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss rate out of range: {loss_rate}")
        self._internet = internet
        self._blocklist = blocklist or Blocklist()
        self._loss_rate = loss_rate
        self._loss_threshold = int(loss_rate * _UINT64_SPAN)
        self._seed = seed
        self._fault_plan = fault_plan
        self._retry_attempts = 1 if retry is None else retry.attempts
        self.probes_sent = 0
        self._retry_draws = 0
        self._metrics = metrics
        #: lazily created serial engine backing :meth:`scan_all_protocols`
        self._engine = None
        if metrics is not None:
            self._m_probes = metrics.counter(
                "repro_probes_sent_total", "Probes sent, by protocol.",
                ("protocol",))
            self._m_hits = metrics.counter(
                "repro_probe_hits_total", "Probes answered, by protocol.",
                ("protocol",))
            self._m_retries = metrics.counter(
                "repro_probe_retries_total",
                "Extra per-probe loss re-draws taken by the retry policy.")
            self._m_burst = metrics.counter(
                "repro_burst_suppressed_total",
                "Probes swallowed by correlated loss bursts.")
            self._m_rate_limited = metrics.counter(
                "repro_rate_limited_total",
                "Responders dropped by per-AS rate limiting, by protocol.",
                ("protocol",))

    def _flush_scan_metrics(
        self, protocol: Protocol, probed: int, hits: int,
        burst_suppressed: int, rate_limited: int,
    ) -> None:
        """Record one finished single-protocol scan into the registry."""
        retry_draws, self._retry_draws = self._retry_draws, 0
        if self._metrics is None:
            return
        self._m_probes.labels(protocol=protocol.label).inc(probed)
        self._m_hits.labels(protocol=protocol.label).inc(hits)
        if retry_draws:
            self._m_retries.inc(retry_draws)
        if burst_suppressed:
            self._m_burst.inc(burst_suppressed)
        if rate_limited:
            self._m_rate_limited.labels(protocol=protocol.label).inc(rate_limited)

    @property
    def blocklist(self) -> Blocklist:
        """The blocklist honoured by every probe."""
        return self._blocklist

    def _lost(self, address: int, protocol: Protocol, day: int) -> bool:
        """I.i.d. loss only; callers check correlated bursts themselves
        (a retransmission inside a burst dies the same way, so bursts
        are not retryable and are counted separately)."""
        if self._loss_threshold == 0:
            return False
        base = (address & _M64) ^ (address >> 64)
        for attempt in range(self._retry_attempts):
            draw = mix64(
                base
                ^ mix64(
                    (day << 8)
                    ^ int(protocol)
                    ^ self._seed
                    ^ ((attempt * RETRY_SALT) & _M64)
                )
            )
            if draw >= self._loss_threshold:
                self._retry_draws += attempt
                return False
        self._retry_draws += self._retry_attempts - 1
        return True

    def _suppressed(
        self, probed: List[int], protocol: Protocol, day: int
    ) -> FrozenSet[int]:
        """Responders dropped by per-AS rate limiting this scan."""
        plan = self._fault_plan
        if plan is None:
            return frozenset()
        internet = self._internet
        return plan.suppressed_responders(
            probed, protocol, day, lambda address: internet.origin_as(address, day)
        )

    def scan(
        self, targets: Iterable[int], protocol: Protocol, day: int
    ) -> ScanResult:
        """Probe every non-blocked target once with one protocol."""
        plan = self._fault_plan
        if plan is not None and plan.vantage_down(day):
            return ScanResult(
                protocol=protocol, day=day, targets=0, responders=frozenset()
            )
        limited = plan is not None and plan.limits_protocol(protocol)
        probed: List[int] = []
        responders = set()
        count = 0
        burst_suppressed = 0
        rate_limited = 0
        internet = self._internet
        blocklist = self._blocklist
        for target in targets:
            if blocklist.is_blocked(target):
                continue
            count += 1
            if limited:
                probed.append(target)
            if plan is not None and plan.burst_lost(target, day):
                burst_suppressed += 1
                continue
            if self._lost(target, protocol, day):
                continue
            if internet.responds(target, protocol, day):
                responders.add(target)
        if limited:
            suppressed = self._suppressed(probed, protocol, day)
            rate_limited = len(responders & suppressed)
            responders -= suppressed
        self.probes_sent += count
        self._flush_scan_metrics(
            protocol, count, len(responders), burst_suppressed, rate_limited
        )
        return ScanResult(
            protocol=protocol, day=day, targets=count, responders=frozenset(responders)
        )

    def scan_udp53(
        self, targets: Iterable[int], day: int, qname: str
    ) -> Udp53Result:
        """Probe UDP/53 with an A/AAAA query for ``qname``.

        Responses include GFW forgeries; ZMap's success criterion is
        "any DNS packet came back from the probed address".
        """
        result = Udp53Result(day=day, qname=qname)
        plan = self._fault_plan
        if plan is not None and plan.vantage_down(day):
            return result
        limited = plan is not None and plan.limits_protocol(Protocol.UDP53)
        probed: List[int] = []
        burst_suppressed = 0
        rate_limited = 0
        internet = self._internet
        blocklist = self._blocklist
        for target in targets:
            if blocklist.is_blocked(target):
                continue
            result.targets += 1
            if limited:
                probed.append(target)
            if plan is not None and plan.burst_lost(target, day):
                burst_suppressed += 1
                continue
            if self._lost(target, Protocol.UDP53, day):
                continue
            responses = internet.dns_probe(target, qname, day)
            if responses:
                result.responders.add(target)
                result.responses[target] = tuple(responses)
        if limited:
            for address in self._suppressed(probed, Protocol.UDP53, day):
                if address in result.responders:
                    rate_limited += 1
                result.responders.discard(address)
                result.responses.pop(address, None)
        self.probes_sent += result.targets
        self._flush_scan_metrics(
            Protocol.UDP53, result.targets, len(result.responders),
            burst_suppressed, rate_limited,
        )
        return result

    def scan_all_protocols(
        self, targets: Iterable[int], day: int, qname: str
    ) -> Tuple[Dict[Protocol, ScanResult], Udp53Result]:
        """Run the full hitlist protocol suite against one target set.

        Equivalent to four :meth:`scan` calls plus :meth:`scan_udp53`,
        but fused into one ground-truth pass per target (see
        :mod:`repro.scan.engine`).  Loss stays independent per (target,
        protocol, day): the four fast probes draw from disjoint 16-bit
        slices of one 64-bit hash.
        """
        engine = self._engine
        if engine is None:
            from repro.scan.engine import ScanEngine

            engine = self._engine = ScanEngine(self)
        return engine.scan_all_protocols(targets, day, qname)
