"""Compact wire format for scan-engine worker IPC.

The first parallel engine pickled a 4096-element list of 128-bit Python
ints per chunk submission and shipped back Python sets, lists and
``DnsResponse`` tuples per chunk result — per-chunk IPC cost rivalled
the chunk's compute, which is how ``scan_workers=4`` ended up slower
than ``scan_workers=1``.  This module defines the packed formats that
replaced it:

* the **target pool** is published to the pool once per scan as a flat
  little-endian ``(lo64, hi64)`` array (:func:`pack_pool`) written into
  a shared anonymous mmap; tasks then carry only ``(start, stop)`` index
  ranges;
* each chunk returns a :class:`PackedChunkResult`: ``array('Q')``
  responder indices per fast protocol, an ``array('Q')`` of UDP/53 hit
  indices plus one *meta byte* per hit (integer-coded genuine-DNS
  behavior, injection/control flags), flattened injected-answer payload
  integers, and a scannable bitmask row for rate-limited scans.

Indices are positions in the scan's full target list, so the parent
decodes a responder with one list lookup and synthesizes DNS response
objects only for actual hits.  Everything in this module is structural:
encode/decode round-trips bit-exactly (property-tested in
``tests/scan/test_wire.py``) and carries no scan semantics.
"""

from __future__ import annotations

from array import array
from typing import Iterator, List, Optional, Sequence, Tuple

_M64 = 0xFFFFFFFFFFFFFFFF

#: bytes per target in the packed pool (two little-endian uint64)
TARGET_BYTES = 16

# ---------------------------------------------------------------------------
# udp-hit meta byte layout

#: genuine-DNS response variant (bits 0-2 of the meta byte)
GENUINE_NONE = 0
GENUINE_REFUSED = 1
GENUINE_REFERRAL = 2
GENUINE_SERVFAIL = 3
GENUINE_BROKEN_ANSWER = 4
GENUINE_NXDOMAIN = 5
GENUINE_NOERROR = 6

GENUINE_MASK = 0b111
#: injected (GFW-forged) responses precede the genuine one
FLAG_INJECTED = 1 << 3
#: the hit appended a control-domain NS log entry
FLAG_CONTROL = 1 << 4
#: the control entry's egress differs from the target (proxy resolver)
FLAG_PROXY = 1 << 5


def pack_pool(targets: Sequence[int]) -> bytes:
    """Pack 128-bit targets into ``(lo64, hi64)`` little-endian pairs."""
    flat = array("Q", bytes(TARGET_BYTES * len(targets)))
    flat[0::2] = array("Q", [target & _M64 for target in targets])
    flat[1::2] = array("Q", [target >> 64 for target in targets])
    return flat.tobytes()


def unpack_pool(buffer: bytes, start: int, stop: int) -> List[int]:
    """Targets ``start..stop`` of a :func:`pack_pool` buffer."""
    flat = array("Q", buffer[start * TARGET_BYTES:stop * TARGET_BYTES])
    los = flat[0::2]
    his = flat[1::2]
    return [lo | (hi << 64) for lo, hi in zip(los, his)]


#: bit positions set in a byte, for scannable-bitmask decoding
_BYTE_BITS: Tuple[Tuple[int, ...], ...] = tuple(
    tuple(bit for bit in range(8) if value >> bit & 1) for value in range(256)
)


def pack_bitmask(flags: Sequence[bool]) -> bytes:
    """Pack booleans into a little-endian-bit bitmask row."""
    out = bytearray((len(flags) + 7) // 8)
    for index, flag in enumerate(flags):
        if flag:
            out[index >> 3] |= 1 << (index & 7)
    return bytes(out)


def iter_bitmask(mask: bytes, count: int) -> Iterator[int]:
    """Indices of set bits in a :func:`pack_bitmask` row, ascending."""
    for byte_index, value in enumerate(mask):
        if value:
            base = byte_index << 3
            for bit in _BYTE_BITS[value]:
                index = base + bit
                if index < count:
                    yield index


class PackedChunkResult:
    """Picklable, integer-coded outcome of one fused chunk scan.

    All index arrays hold positions in the scan's full target list (not
    chunk-relative), in target order.  ``udp_meta[i]`` describes hit
    ``udp_idx[i]`` via the ``GENUINE_*``/``FLAG_*`` codes above;
    injected-answer payloads for flagged hits follow in ``inj_counts`` /
    ``inj_answers`` order (one ``Q`` slot per answer, or two — ``lo,
    hi`` — when ``inj_wide``).
    """

    __slots__ = (
        "count", "burst_targets", "fast_retry_draws", "udp_retry_draws",
        "fast_idx", "udp_idx", "udp_meta", "inj_counts", "inj_answers",
        "inj_wide", "scannable_bits",
    )

    def __init__(self) -> None:
        self.count = 0
        self.burst_targets = 0
        self.fast_retry_draws = 0
        self.udp_retry_draws = 0
        #: per fast protocol (slice order), responder indices
        self.fast_idx: Tuple[array, ...] = (
            array("Q"), array("Q"), array("Q"), array("Q"),
        )
        #: UDP/53 hit indices, in target order
        self.udp_idx: array = array("Q")
        #: one meta byte per UDP/53 hit
        self.udp_meta: bytearray = bytearray()
        #: per FLAG_INJECTED hit, the number of forged responses
        self.inj_counts: array = array("H")
        #: flattened forged-answer payload integers
        self.inj_answers: array = array("Q")
        #: True when answers take two slots (128-bit Teredo addresses)
        self.inj_wide: bool = False
        #: non-blocked chunk positions as a bitmask row, kept only when
        #: per-AS rate limiting needs the probed list (chunk-relative)
        self.scannable_bits: Optional[bytes] = None

    def nbytes(self) -> int:
        """Payload size as shipped over the pool's result pipe."""
        total = 32  # the four scalar counters
        for idx in self.fast_idx:
            total += len(idx) * idx.itemsize
        total += len(self.udp_idx) * self.udp_idx.itemsize
        total += len(self.udp_meta)
        total += len(self.inj_counts) * self.inj_counts.itemsize
        total += len(self.inj_answers) * self.inj_answers.itemsize
        if self.scannable_bits is not None:
            total += len(self.scannable_bits)
        return total

    def __getstate__(self):
        return (
            self.count, self.burst_targets, self.fast_retry_draws,
            self.udp_retry_draws,
            tuple(idx.tobytes() for idx in self.fast_idx),
            self.udp_idx.tobytes(), bytes(self.udp_meta),
            self.inj_counts.tobytes(), self.inj_answers.tobytes(),
            self.inj_wide, self.scannable_bits,
        )

    def __setstate__(self, state):
        (self.count, self.burst_targets, self.fast_retry_draws,
         self.udp_retry_draws, fast, udp_idx, udp_meta, inj_counts,
         inj_answers, self.inj_wide, self.scannable_bits) = state
        self.fast_idx = tuple(array("Q", blob) for blob in fast)
        self.udp_idx = array("Q", udp_idx)
        self.udp_meta = bytearray(udp_meta)
        self.inj_counts = array("H", inj_counts)
        self.inj_answers = array("Q", inj_answers)

    def __eq__(self, other) -> bool:
        if not isinstance(other, PackedChunkResult):
            return NotImplemented
        return self.__getstate__() == other.__getstate__()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PackedChunkResult count={self.count} "
            f"fast={[len(i) for i in self.fast_idx]} "
            f"udp={len(self.udp_idx)} inj={len(self.inj_counts)}>"
        )
