"""Request-based scan blocklist (measurement ethics, Sec. 3.3).

Operators can request exclusion of their prefixes; every scanner in this
package consults the blocklist before emitting probes.  The paper seeds
its blocklist from the existing IPv6 Hitlist service's list so opted-out
networks stay untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Set

from repro.net.prefix import IPv6Prefix
from repro.net.trie import PrefixTrie


@dataclass(frozen=True)
class BlocklistEntry:
    """One opt-out request."""

    prefix: IPv6Prefix
    reason: str = "operator request"


class Blocklist:
    """A set of never-scan prefixes with containment checks."""

    def __init__(self, entries: Iterable[BlocklistEntry] = ()) -> None:
        self._trie: PrefixTrie[BlocklistEntry] = PrefixTrie()
        self._entries: List[BlocklistEntry] = []
        for entry in entries:
            self._add_entry(entry)

    def _add_entry(self, entry: BlocklistEntry) -> None:
        if entry.prefix not in self._trie:
            self._trie[entry.prefix] = entry
            self._entries.append(entry)

    def add(self, prefix: IPv6Prefix, reason: str = "operator request") -> None:
        """Honour a new opt-out request."""
        self._add_entry(BlocklistEntry(prefix=prefix, reason=reason))

    def seed_from(self, other: "Blocklist") -> None:
        """Copy all entries from an existing service's blocklist."""
        for entry in other:
            self._add_entry(entry)

    def is_blocked(self, address: int) -> bool:
        """True when any opt-out prefix covers ``address``."""
        if not self._entries:
            return False
        return self._trie.covers(address)

    def filter(self, addresses: Iterable[int]) -> Set[int]:
        """The scannable subset of ``addresses``."""
        if not self._entries:
            return set(addresses)
        return {address for address in addresses if not self._trie.covers(address)}

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[BlocklistEntry]:
        return iter(self._entries)
