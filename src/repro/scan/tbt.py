"""The Too Big Trick (Beverly et al.): PMTU-cache-based alias evidence.

Steps per prefix (Sec. 5.1 of the paper):

(i)   verify eight addresses inside the prefix answer 1300-byte ICMP
      echo requests unfragmented (1300 B is just above the IPv6 minimum
      MTU of 1280 B);
(ii)  send an ICMPv6 Packet Too Big to *one* address and verify its next
      echo reply is fragmented;
(iii) echo the remaining addresses without any preceding error: aliases
      of the same host share the PMTU cache and fragment too.

Outcomes map to the paper's observations: 93.75 % of measurable prefixes
shared one cache (true aliases), 0.85 % shared nothing, 5.4 % shared
partially (2-7 of 8; mostly Akamai and Cloudflare load balancers).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.net.prefix import IPv6Prefix
from repro.net.random_addr import spread_addresses
from repro.simnet.internet import SimInternet

_PROBE_SIZE = 1300


class TbtOutcome(enum.Enum):
    """Classification of one prefix after the three TBT steps."""

    NOT_APPLICABLE = "not_applicable"  # step (i) failed: no usable baseline
    FULL_SHARED = "full_shared"  # all remaining addresses fragmented
    PARTIAL_SHARED = "partial_shared"  # some, not all, fragmented
    NONE_SHARED = "none_shared"  # no remaining address fragmented


@dataclass(frozen=True)
class TbtResult:
    """Result for one prefix."""

    prefix: IPv6Prefix
    outcome: TbtOutcome
    probed: int = 0
    fragmented_siblings: int = 0

    @property
    def shared_count(self) -> int:
        """Addresses sharing the trigger address's PMTU cache (incl. itself)."""
        if self.outcome is TbtOutcome.NOT_APPLICABLE:
            return 0
        return self.fragmented_siblings + 1


class TbtProber:
    """Runs the Too Big Trick against fully responsive prefixes."""

    def __init__(self, internet: SimInternet, addresses_per_prefix: int = 8) -> None:
        if addresses_per_prefix < 2:
            raise ValueError("TBT needs at least two addresses under test")
        self._internet = internet
        self._count = addresses_per_prefix

    def probe_prefix(self, prefix: IPv6Prefix, day: int, nonce: int = 0) -> TbtResult:
        """Execute the three steps against one prefix."""
        internet = self._internet
        count = self._count
        spread = 16 if count <= 16 else count
        candidates = spread_addresses(prefix, spread, nonce=nonce)[:count]

        # (i) baseline: everyone answers large echoes unfragmented.
        for address in candidates:
            reply = internet.icmp_echo(address, day, size=_PROBE_SIZE)
            if reply is None or reply.fragmented:
                return TbtResult(prefix=prefix, outcome=TbtOutcome.NOT_APPLICABLE)

        # (ii) Packet Too Big to the first address must take effect.
        trigger, *siblings = candidates
        internet.send_packet_too_big(trigger, day)
        reply = internet.icmp_echo(trigger, day, size=_PROBE_SIZE)
        if reply is None or not reply.fragmented:
            return TbtResult(prefix=prefix, outcome=TbtOutcome.NOT_APPLICABLE)

        # (iii) siblings without their own error message.
        fragmented = 0
        for address in siblings:
            reply = internet.icmp_echo(address, day, size=_PROBE_SIZE)
            if reply is not None and reply.fragmented:
                fragmented += 1

        if fragmented == len(siblings):
            outcome = TbtOutcome.FULL_SHARED
        elif fragmented == 0:
            outcome = TbtOutcome.NONE_SHARED
        else:
            outcome = TbtOutcome.PARTIAL_SHARED
        return TbtResult(
            prefix=prefix,
            outcome=outcome,
            probed=len(candidates),
            fragmented_siblings=fragmented,
        )
