"""Incremental, churn-aware scan scheduling.

Every scan day used to walk the full target pool even though the
longitudinal design of the source paper makes most of that work
redundant: stable prefixes barely move between scans.  The
:class:`IncrementalScheduler` exploits this.  It maintains per-/64
priority state (EWMA hit rate, days since last change, new/degraded
flags) and partitions the pool each scan day into three classes:

* **full-probe** prefixes — churned, new-from-sources, recently
  degraded, or due for a periodic refresh; probed end to end through
  the mmap/packed-wire parallel path,
* **confirmation-sample** prefixes — stable prefixes drawn by a
  deterministic ``mix64``-seeded lottery at a configurable rate; also
  probed, and any contradiction with the carried state counts as a
  divergence repair and demotes the prefix back to full probing,
* **carried-forward** prefixes — replayed from the carry store during
  the in-order merge, so snapshots, metrics, and checkpoint bytes stay
  deterministic for any worker count.

The scheduling unit is the /64 prefix: a prefix is wholly probed or
wholly carried, which makes the tiling property (probed and carried
partitions are disjoint and cover the pool exactly) true by
construction.

Carrying a result forward does NOT mean replaying yesterday's
responder set verbatim.  The carry store keeps an estimated
*ground-truth response mask* per address (which protocols the host
answers, plus a GFW-injection flag), and replay re-applies the
scanner's per-day loss draws — pure SplitMix64 functions of (address,
protocol, day, seed) that need no probe to evaluate.  For a prefix
whose ground truth has not changed, the replayed responders are
bit-identical to what a real probe would have returned, including the
day's loss flicker.  The same trick makes change detection
flicker-immune: a probed prefix counts as *changed* only when its
observed bits differ from the loss-filtered expectation, never because
a probe happened to be lost.  All state rides in checkpoints via
:meth:`IncrementalScheduler.state_dict`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, TYPE_CHECKING

from repro._util import mix64
from repro.protocols import Protocol
from repro.runtime.faults import RETRY_SALT

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.gfw.filter import CleaningResult
    from repro.obs.metrics import MetricsRegistry
    from repro.runtime.faults import FaultPlan
    from repro.scan.zmap import ScanResult, Udp53Result

_M64 = 0xFFFFFFFFFFFFFFFF
_UINT64_SPAN = float(1 << 64)
#: fused fast-probe loss salt (must match the scan engine)
_FAST_SALT = 0x5CA11
#: salt separating the confirmation-sample lottery from every other
#: SplitMix64 stream in the simulation
_SAMPLE_SALT = 0x5C4ED5C4ED
#: salt for the per-prefix refresh phase (staggers periodic refreshes so
#: a /48 whose prefixes stabilised together does not refresh in a wave)
_REFRESH_SALT = 0x9EF9E54
#: escalation radius for detected churn: prefixes sharing a /48 with a
#: changed prefix are re-probed next scan (CPE rotation renumbers whole
#: customer groups at once, so churn is spatially correlated)
_GROUP_SHIFT = 16
#: rotation-detection radius: ISP CPE pools are /40-ish, so one
#: renumbering wave lands across the pool's /48s but inside one /40
_ROTATION_SHIFT = 24

#: carry-store bits, one per protocol
BIT_ICMP = 0x01
BIT_TCP80 = 0x02
BIT_TCP443 = 0x04
BIT_UDP443 = 0x08
BIT_UDP53 = 0x10
#: the address's UDP/53 responses carried injection evidence
BIT_INJECTED = 0x20
_RESPONDER_BITS = 0x1F
_FAST_MASK = 0x0F
#: an address whose only "response" is a forged GFW injection: quiet in
#: the cleaned view (the filter subtracts it), but its replay must keep
#: flowing or the 30-day filter would age it out earlier than full mode
_INJECTED_ONLY = BIT_UDP53 | BIT_INJECTED

#: fast-path protocols paired with their carry bit, in the order the
#: engine's fused loss draw slices them
FAST_BITS: Tuple[Tuple[Protocol, int], ...] = (
    (Protocol.ICMP, BIT_ICMP),
    (Protocol.TCP80, BIT_TCP80),
    (Protocol.TCP443, BIT_TCP443),
    (Protocol.UDP443, BIT_UDP443),
)

#: a stable prefix is fully re-probed at least every this many scans
DEFAULT_REFRESH_INTERVAL = 10
DEFAULT_SAMPLE_RATE = 0.03125
#: consecutive unchanged probes before a prefix counts as stable
STABLE_AFTER = 2
#: each observed response-mask flap lengthens the unchanged streak a
#: prefix must rebuild before it is carried again; hosts flap in
#: multi-day epochs, so one flap is strong evidence of more to come
FLAP_PENALTY = 6
#: prefixes that flapped this many times are never carried again —
#: their hosts have duty cycles, not stable responsiveness
MAX_FLAPS = 4
#: this many prefixes of one /48 going silent in the same scan is CPE
#: renumbering, not host churn: the abandoned addresses never answer
#: again, so they skip the quiet-age probation entirely
ROTATION_MIN_PREFIXES = 3
#: a prefix is carried only once this many days have passed since its
#: last observed change.  Host duty cycles run up to ~4 weeks, so a
#: quiet spell shorter than this is indistinguishable from a flappy
#: host's dark epoch; older silence is near-certainly a dead address
QUIET_AGE_DAYS = 30
#: EWMA smoothing factor for per-prefix hit rates
EWMA_ALPHA = 0.25
#: a probe whose hit rate falls below this fraction of the EWMA marks
#: the prefix degraded (probed fully until it stabilises again)
DEGRADE_FACTOR = 0.5
#: EWMAs below this floor are noise, not a baseline to degrade from;
#: without it a dead prefix would oscillate into full probing forever
DEGRADE_FLOOR = 0.05


@dataclass
class PrefixPriority:
    """Churn/responsiveness state for one /64 prefix."""

    last_probe_day: int = -1
    #: day this prefix was first probed; prefixes present since the
    #: campaign's first scan came from input hitlists (historically
    #: responsive somewhere, so host-backed and possibly duty-cycled)
    #: and never qualify for the never-visible fast-track
    first_probe_day: int = -1
    last_change_day: int = -1
    unchanged_probes: int = 0
    #: consecutive scans this prefix has been carried since its last probe
    scans_since_probe: int = 0
    #: EWMA of the per-probe hit rate (loss-corrected: computed from the
    #: ground-truth estimate, not raw observations); -1.0 until the
    #: first probe
    ewma_hit_rate: float = -1.0
    degraded: bool = False
    #: response-mask changes observed after the first probe (capped at
    #: :data:`MAX_FLAPS`); membership churn does not count
    flaps: int = 0
    member_count: int = 0
    #: xor-fold of ``mix64`` over the member addresses — detects
    #: membership churn without storing the members
    member_sig: int = 0
    #: whether any member was ever a cleaned-view responder; prefixes
    #: that never were (trace-discovered routers, injection-only
    #: addresses) skip the quiet-age probation — duty-cycle flapping is
    #: only a risk for space that has actually answered a probe
    ever_visible: bool = False


@dataclass
class ScanPlan:
    """One scan day's partition of the pool."""

    day: int
    pool_size: int
    forced_full: bool
    #: probe set (full + confirmation samples), globally sorted
    probe_targets: List[int]
    #: carried-forward targets, globally sorted
    carried: List[int]
    #: (prefix, sorted members) for every probed prefix
    probe_groups: List[Tuple[int, List[int]]]
    #: prefixes probed as confirmation samples
    sampled: Set[int]
    full_targets: int = 0
    sampled_targets: int = 0
    #: /48 groups escalated to full probing by churn detected last scan
    escalated: Set[int] = field(default_factory=set)


@dataclass
class CarriedScan:
    """Carried-forward responders, shaped for the in-order merge."""

    targets: int
    #: responder sets in ``FAST_BITS`` protocol order
    fast: Tuple[Set[int], ...]
    udp_responders: Set[int]


class IncrementalScheduler:
    """Partition the scan pool into probe / confirmation / carried sets.

    Priorities are fleet-global: the scheduler runs in the coordinator
    before sharding, so vantage members see only the probe set and
    shard it exactly as before.  Loss replay uses the coordinator seed;
    fleet members draw loss from per-vantage seeds, so multi-vantage
    incremental runs trade a little extra divergence for the same probe
    savings (the gate's bit-exactness claim is single-vantage).
    """

    def __init__(
        self,
        seed: int = 0,
        refresh_interval: int = DEFAULT_REFRESH_INTERVAL,
        sample_rate: float = DEFAULT_SAMPLE_RATE,
        loss_rate: float = 0.03,
        retry_attempts: int = 1,
        fault_plan: Optional["FaultPlan"] = None,
        metrics: Optional["MetricsRegistry"] = None,
    ) -> None:
        if refresh_interval < 1:
            raise ValueError(f"refresh_interval must be >= 1, got {refresh_interval}")
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be within [0, 1], got {sample_rate}")
        self._seed = seed
        self.refresh_interval = refresh_interval
        self.sample_rate = sample_rate
        self._sample_threshold = int(sample_rate * _UINT64_SPAN)
        # the scanner's loss-draw parameters, mirrored exactly (see
        # ZMapScanner._lost and the engine's fused fast-probe draw)
        self._threshold16 = int(loss_rate * 65536.0)
        self._threshold64 = int(loss_rate * _UINT64_SPAN)
        self._attempts = retry_attempts
        self._fault_plan = fault_plan
        self._prefixes: Dict[int, PrefixPriority] = {}
        #: address -> estimated ground-truth response-mask bits
        self._carry: Dict[int, int] = {}
        #: monotone count of plans built; drives the refresh stagger
        self._scan_index = 0
        #: day of the first plan ever built; separates the campaign-start
        #: input cohort from mid-campaign discoveries
        self._first_plan_day = -1
        #: /48 groups flagged for escalation on the next plan
        self._suspects: Set[int] = set()
        self._m_full = self._m_sampled = self._m_carried = self._m_repairs = None
        if metrics is not None:
            self._m_full = metrics.counter(
                "repro_sched_full_targets_total",
                "Targets probed at full rate (churned/new/degraded/refresh-due prefixes)",
            )
            self._m_sampled = metrics.counter(
                "repro_sched_sampled_targets_total",
                "Targets probed as confirmation samples of stable prefixes",
            )
            self._m_carried = metrics.counter(
                "repro_sched_carried_targets_total",
                "Targets whose scan result was replayed from the carry store",
            )
            self._m_repairs = metrics.counter(
                "repro_sched_divergence_repairs_total",
                "Stable prefixes whose confirmation sample contradicted the carried state",
            )

    @staticmethod
    def _signature(members: Sequence[int]) -> int:
        sig = 0
        for address in members:
            sig ^= mix64(address & _M64)
        return sig

    @staticmethod
    def _visible(bits: int) -> int:
        """The cleaned view of a response mask.

        Injection-only DNS "responses" are subtracted by the GFW filter
        before anything is published, so a change in injection status
        alone is not churn: it must update the carry store (replay
        parity feeds the 30-day filter) but must not reset quiet-age
        clocks, count as a flap, or escalate the /48.
        """
        visible = bits & (_RESPONDER_BITS & ~BIT_UDP53)
        if bits & BIT_UDP53 and not bits & BIT_INJECTED:
            visible |= BIT_UDP53
        return visible

    # ------------------------------------------------------------------
    # loss replay

    def _survivors(self, target: int, day: int) -> int:
        """Which of the five probes would survive loss on ``day``.

        Replays the scanner's deterministic draws: the fused 64-bit
        fast-protocol draw (16-bit slice per protocol), the per-protocol
        UDP/53 draw, retry re-draws, and correlated loss bursts.  Pure
        computation — no ground-truth access, no probe budget.
        """
        plan = self._fault_plan
        if plan is not None and plan.burst_lost(target, day):
            return 0
        base = (target & _M64) ^ (target >> 64)
        if self._threshold16:
            surviving = 0
            for attempt in range(self._attempts):
                draw = mix64(
                    base
                    ^ mix64(
                        (day << 8)
                        ^ self._seed
                        ^ _FAST_SALT
                        ^ ((attempt * RETRY_SALT) & _M64)
                    )
                )
                for index in range(4):
                    if ((draw >> (16 * index)) & 0xFFFF) >= self._threshold16:
                        surviving |= 1 << index
                if surviving == _FAST_MASK:
                    break
        else:
            surviving = _FAST_MASK
        if self._threshold64:
            for attempt in range(self._attempts):
                draw = mix64(
                    base
                    ^ mix64(
                        (day << 8)
                        ^ int(Protocol.UDP53)
                        ^ self._seed
                        ^ ((attempt * RETRY_SALT) & _M64)
                    )
                )
                if draw >= self._threshold64:
                    surviving |= BIT_UDP53
                    break
        else:
            surviving |= BIT_UDP53
        return surviving

    # ------------------------------------------------------------------
    # planning

    def plan(
        self,
        day: int,
        pool: Iterable[int],
        force_full: bool = False,
        must_probe: Optional[Set[int]] = None,
    ) -> ScanPlan:
        """Partition ``pool`` for scan day ``day``.

        ``force_full`` probes every prefix regardless of state — used
        for the final scan of a campaign so the last published hitlist
        carries zero divergence from a full-scan baseline.
        ``must_probe`` addresses are never carried regardless of state;
        the service passes addresses nearing the 30-day filter's
        eviction deadline so a late first response cannot be missed
        while carried and silently evicted.
        """
        if self._first_plan_day < 0:
            self._first_plan_day = day
        pool_set = pool if isinstance(pool, (set, frozenset)) else set(pool)
        groups: Dict[int, List[int]] = {}
        for address in pool_set:
            groups.setdefault(address >> 64, []).append(address)
        # prune state for prefixes/addresses that left the pool so the
        # checkpoint footprint tracks the live pool
        for prefix in [p for p in self._prefixes if p not in groups]:
            del self._prefixes[prefix]
        for address in [a for a in self._carry if a not in pool_set]:
            del self._carry[address]

        probe_targets: List[int] = []
        carried: List[int] = []
        probe_groups: List[Tuple[int, List[int]]] = []
        sampled: Set[int] = set()
        full_targets = 0
        sampled_targets = 0
        day_hash = mix64((day ^ self._seed ^ _SAMPLE_SALT) & _M64)
        scan_index = self._scan_index
        self._scan_index = scan_index + 1
        escalated = self._suspects
        self._suspects = set()
        for prefix in sorted(groups):
            members = sorted(groups[prefix])
            state = self._prefixes.get(prefix)
            # each prefix refreshes once every refresh_interval scans, on
            # a mix64-staggered phase so refreshes spread evenly instead
            # of arriving in the wave the prefixes stabilised in
            refresh_due = (
                scan_index + mix64((prefix ^ self._seed ^ _REFRESH_SALT) & _M64)
            ) % self.refresh_interval == 0
            stable = (
                not force_full
                and state is not None
                and state.last_probe_day >= 0
                and not state.degraded
                and state.flaps < MAX_FLAPS
                and state.unchanged_probes >= STABLE_AFTER + FLAP_PENALTY * state.flaps
                and not refresh_due
                and (prefix >> _GROUP_SHIFT) not in escalated
                # never-visible mid-campaign discoveries (trace routers,
                # injection artifacts) skip the quiet-age probation: a
                # duty cycle is only a risk for space that has actually
                # answered a probe.  The campaign-start cohort keeps it —
                # input hitlists are host-backed, and a host dark on day
                # one blooms within its flap period
                and (
                    (
                        not state.ever_visible
                        and state.first_probe_day > self._first_plan_day
                    )
                    or (
                        state.last_change_day >= 0
                        and day - state.last_change_day >= QUIET_AGE_DAYS
                    )
                )
                and (
                    must_probe is None
                    or all(address not in must_probe for address in members)
                )
                and len(members) == state.member_count
                and self._signature(members) == state.member_sig
                # only quiet prefixes are carried: hosts flap in
                # multi-day duty cycles that no amount of observed
                # stability can rule out, so a carried responder is a
                # standing divergence risk, while a carried silent
                # prefix can only ever miss a first response until its
                # next refresh.  The pool is overwhelmingly silent
                # (the paper's hitlists are ~5 % responsive), so this
                # is where the probe budget actually goes.  Injection-
                # only addresses count as quiet: the cleaned view
                # subtracts them either way
                and all(
                    self._carry.get(address, 0) in (0, _INJECTED_ONLY)
                    for address in members
                )
            )
            if stable and mix64((prefix ^ day_hash) & _M64) >= self._sample_threshold:
                state.scans_since_probe += 1
                carried.extend(members)
                continue
            probe_targets.extend(members)
            probe_groups.append((prefix, members))
            if stable:
                sampled.add(prefix)
                sampled_targets += len(members)
            else:
                full_targets += len(members)
        if self._m_full is not None:
            self._m_full.inc(full_targets)
            self._m_sampled.inc(sampled_targets)
            self._m_carried.inc(len(carried))
        return ScanPlan(
            day=day,
            pool_size=len(pool_set),
            forced_full=force_full,
            probe_targets=probe_targets,
            carried=carried,
            probe_groups=probe_groups,
            sampled=sampled,
            full_targets=full_targets,
            sampled_targets=sampled_targets,
            escalated=escalated,
        )

    def carried_scan(self, plan: ScanPlan) -> CarriedScan:
        """Replay the carried targets' responders for the plan's day.

        Each address's estimated response mask is filtered through the
        day's loss draws, so a carried prefix with unchanged ground
        truth merges bit-identically to a real probe of it.
        """
        fast: Tuple[Set[int], ...] = tuple(set() for _ in FAST_BITS)
        udp: Set[int] = set()
        day = plan.day
        carry = self._carry
        for address in plan.carried:
            bits = carry.get(address, 0)
            if not bits:
                continue
            live = bits & self._survivors(address, day)
            if not live:
                continue
            for index, (_, bit) in enumerate(FAST_BITS):
                if live & bit:
                    fast[index].add(address)
            if live & BIT_UDP53:
                udp.add(address)
        return CarriedScan(targets=len(plan.carried), fast=fast, udp_responders=udp)

    def carried_injected(self, plan: ScanPlan, udp_responders: Set[int]) -> Set[int]:
        """Carried UDP/53 responders whose stored responses were injected."""
        carry = self._carry
        return {
            address
            for address in plan.carried
            if address in udp_responders and carry.get(address, 0) & BIT_INJECTED
        }

    # ------------------------------------------------------------------
    # absorbing probe outcomes

    def absorb(
        self,
        plan: ScanPlan,
        results: Dict[Protocol, "ScanResult"],
        udp53: "Udp53Result",
        cleaning: "CleaningResult",
    ) -> None:
        """Fold probed outcomes back into the priority + carry state.

        Change detection is loss-aware: observed bits are compared with
        the carry store's expectation *after* filtering both through the
        day's survival draws, so a lost probe is "no information", not
        churn.  Also re-attributes carried-forward injected responders
        inside ``cleaning`` — carried responders ride into the merge
        without response objects, so the GFW filter classified them
        clean; the carry store remembers which of them were injected.
        """
        day = plan.day
        carry = self._carry
        fast_lookup = [(results[protocol].responders, bit) for protocol, bit in FAST_BITS]
        udp_responders = udp53.responders
        injected = cleaning.injected_responders
        repairs = 0
        # pass 1: fold observations into the carry store and classify
        # each probed prefix; /48 rotation detection needs the whole
        # scan's transitions before any priority state is updated
        observations = []
        rotation_candidates: Dict[int, int] = {}
        for prefix, members in plan.probe_groups:
            raw_changed = False
            visible_changed = False
            was_visible = False
            now_visible = False
            hits = 0
            for address in members:
                observed = 0
                for responders, bit in fast_lookup:
                    if address in responders:
                        observed |= bit
                if address in udp_responders:
                    observed |= BIT_UDP53
                    if address in injected:
                        observed |= BIT_INJECTED
                survivors = self._survivors(address, day)
                estimate = carry.get(address, 0)
                expected = estimate & survivors
                if expected & BIT_UDP53 and estimate & BIT_INJECTED:
                    expected |= BIT_INJECTED
                if observed != expected:
                    raw_changed = True
                    if self._visible(observed) != self._visible(expected):
                        visible_changed = True
                if self._visible(estimate):
                    was_visible = True
                # protocols whose probe survived report ground truth;
                # lost probes keep the previous estimate
                if survivors & BIT_UDP53:
                    survivors |= BIT_INJECTED
                updated = (estimate & ~survivors) | (observed & survivors)
                if updated:
                    carry[address] = updated
                elif estimate:
                    del carry[address]
                # hit rates come from the loss-corrected estimate of the
                # *cleaned* view: unlucky loss cannot crater the EWMA,
                # and injection-only addresses are not responders (an
                # injection era ending is not mass host degradation)
                if self._visible(updated):
                    hits += 1
                    now_visible = True
            observations.append(
                (prefix, members, raw_changed, visible_changed, was_visible,
                 now_visible, hits)
            )
            if visible_changed and was_visible and not now_visible:
                group = prefix >> _ROTATION_SHIFT
                rotation_candidates[group] = rotation_candidates.get(group, 0) + 1
        # /48 groups where several prefixes went silent together: CPE
        # renumbering abandoned those addresses for good
        rotated = {
            group
            for group, count in rotation_candidates.items()
            if count >= ROTATION_MIN_PREFIXES
        }
        # pass 2: update priority state
        for (prefix, members, raw_changed, visible_changed, was_visible,
             now_visible, hits) in observations:
            state = self._prefixes.get(prefix)
            if state is None:
                state = self._prefixes[prefix] = PrefixPriority()
            first_probe = state.last_probe_day < 0
            if first_probe:
                state.first_probe_day = day
            # injection-status-only updates (raw change, visible mask
            # unchanged) refresh the carry store silently: the cleaned
            # view subtracts injected responders either way, so an
            # injection era starting or ending is not host churn and
            # must not de-stabilise thousands of quiet prefixes at once
            changed = first_probe or visible_changed
            if now_visible:
                state.ever_visible = True
            renumbered = (
                visible_changed
                and not now_visible
                and prefix >> _ROTATION_SHIFT in rotated
            )
            if visible_changed and not first_probe and not renumbered:
                state.flaps = min(state.flaps + 1, MAX_FLAPS)
                if (prefix >> _GROUP_SHIFT) not in plan.escalated:
                    # churn is spatially correlated (CPE rotation flips
                    # whole customer groups): re-probe the /48 next scan
                    self._suspects.add(prefix >> _GROUP_SHIFT)
            count = len(members)
            sig = self._signature(members)
            membership_changed = count != state.member_count or sig != state.member_sig
            if membership_changed:
                changed = True
                state.member_count = count
                state.member_sig = sig
            rate = hits / count if count else 0.0
            previous = state.ewma_hit_rate
            if membership_changed or previous < 0.0:
                # composition changed: the old EWMA is not a baseline
                state.degraded = False
                state.ewma_hit_rate = rate
            else:
                state.degraded = (
                    previous >= DEGRADE_FLOOR and rate < previous * DEGRADE_FACTOR
                )
                state.ewma_hit_rate = EWMA_ALPHA * rate + (1.0 - EWMA_ALPHA) * previous
            if changed:
                # only visible-mask churn restarts the quiet-age clock;
                # membership growth resets just the short streak, and
                # renumbering-abandoned prefixes backdate it (the old
                # addresses are gone for good, waiting out a duty cycle
                # proves nothing)
                if renumbered:
                    state.last_change_day = day - QUIET_AGE_DAYS
                elif (visible_changed or first_probe):
                    state.last_change_day = day
                state.unchanged_probes = 0
                if prefix in plan.sampled:
                    # confirmation sample contradicted the carry store:
                    # count the repair; zeroed unchanged_probes already
                    # forces full re-probes until the prefix re-stabilises
                    repairs += 1
            else:
                state.unchanged_probes += 1
            state.last_probe_day = day
            state.scans_since_probe = 0
        carried_injected = self.carried_injected(plan, udp_responders)
        if carried_injected:
            cleaning.clean_responders -= carried_injected
            cleaning.injected_responders |= carried_injected
        if self._m_repairs is not None and repairs:
            self._m_repairs.inc(repairs)

    # ------------------------------------------------------------------
    # checkpoints

    def state_dict(self) -> Dict[str, object]:
        """Checkpoint payload; sorted so bytes are deterministic."""
        return {
            "prefixes": [
                [
                    prefix,
                    state.last_probe_day,
                    state.first_probe_day,
                    state.last_change_day,
                    state.unchanged_probes,
                    state.scans_since_probe,
                    state.ewma_hit_rate,
                    int(state.degraded),
                    state.flaps,
                    state.member_count,
                    state.member_sig,
                    int(state.ever_visible),
                ]
                for prefix, state in sorted(self._prefixes.items())
            ],
            "carry": [[address, bits] for address, bits in sorted(self._carry.items())],
            "scan_index": self._scan_index,
            "first_plan_day": self._first_plan_day,
            "suspects": sorted(self._suspects),
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        self._scan_index = int(state.get("scan_index", 0))  # type: ignore[arg-type]
        self._first_plan_day = int(state.get("first_plan_day", -1))  # type: ignore[arg-type]
        self._suspects = {int(g) for g in state.get("suspects", ())}  # type: ignore[union-attr]
        self._prefixes = {}
        for row in state.get("prefixes", ()):  # type: ignore[union-attr]
            (
                prefix, last_probe, first_probe, last_change, unchanged,
                scans_since, ewma, degraded, flaps, count, sig, visible,
            ) = row
            self._prefixes[int(prefix)] = PrefixPriority(
                last_probe_day=int(last_probe),
                first_probe_day=int(first_probe),
                last_change_day=int(last_change),
                unchanged_probes=int(unchanged),
                scans_since_probe=int(scans_since),
                ewma_hit_rate=float(ewma),
                degraded=bool(degraded),
                flaps=int(flaps),
                member_count=int(count),
                member_sig=int(sig),
                ever_visible=bool(visible),
            )
        self._carry = {int(a): int(b) for a, b in state.get("carry", ())}  # type: ignore[union-attr]
