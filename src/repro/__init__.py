"""repro — reproduction of "Rusty Clusters? Dusting an IPv6 Research
Foundation" (Zirngibl et al., ACM IMC 2022).

The package pairs a deterministic simulated IPv6 internet with a faithful
implementation of the IPv6 Hitlist service and the paper's measurement
toolchain. The common entry points:

>>> from repro import build_internet, small_config, HitlistService
>>> internet = build_internet(small_config(seed=1))
>>> service = HitlistService(internet, small_config(seed=1))

Subpackages
-----------
``repro.net``       IPv6 primitives (addresses, prefixes, tries, EUI-64)
``repro.asn``       AS registry, BGP RIB, routing timeline
``repro.simnet``    the simulated internet (ground truth)
``repro.scan``      ZMapv6 / Yarrp / DNS / TBT / fingerprinting
``repro.hitlist``   the hitlist pipeline (the paper's subject)
``repro.gfw``       GFW injection detection and filtering
``repro.tga``       target generation algorithms + Sec. 6 evaluation
``repro.analysis``  every table and figure
``repro.cli``       the ``repro-cli`` command line
"""

from repro.hitlist import HitlistService, default_scan_days
from repro.protocols import ALL_PROTOCOLS, Protocol
from repro.simnet import build_internet, default_config, small_config

__version__ = "1.0.0"

__all__ = [
    "ALL_PROTOCOLS",
    "HitlistService",
    "Protocol",
    "__version__",
    "build_internet",
    "default_config",
    "default_scan_days",
    "small_config",
]
