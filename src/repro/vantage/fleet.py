"""The multi-vantage scan fleet: sharding, failover, reconciliation.

Promotes the scan vantage from a singleton to a coordinated fleet of N
simulated vantage points, each at a distinct AS location and therefore
with distinct path behaviour: its own Great-Firewall side (via
:meth:`repro.simnet.internet.SimInternet.vantage_view`), its own loss
and burst draws, and its own per-AS rate-limit exposure (via
:meth:`repro.runtime.faults.FaultPlan.view_for`).

The coordinator shards the target pool by rendezvous hashing: every
target carries a deterministic preference ranking over all vantages,
its *owner* is the highest-ranked live member, and when the owner is
down the target automatically re-shards to the next-ranked survivor —
no rebalancing state, no migration, identical answers for any worker
count.  A deterministic ``overlap`` fraction of targets are *witness*
targets probed by a small panel of vantages; their disagreeing verdicts
are reconciled by a configurable quorum (strict / majority / any, see
:mod:`repro.vantage.quorum`) and exported as per-vantage disagreement
metrics.

Failed vantages are retried with exponential backoff: a member observed
down during a partial failure is quarantined for ``min(2**failures,
16)`` days after its last failure before the coordinator trusts it
again.  All fleet survival state (failure counts, quarantine deadlines,
per-vantage probe totals) rides in service checkpoints, so a campaign
killed mid-reconciliation resumes bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, TYPE_CHECKING

from repro._util import mix64
from repro.protocols import Protocol
from repro.scan.engine import ScanEngine
from repro.scan.zmap import ZMapScanner
from repro.vantage.quorum import quorum_size, validate_policy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scan.scheduler import CarriedScan

_M64 = 0xFFFFFFFFFFFFFFFF
_UINT64_SPAN = 1 << 64
#: witness targets are cross-checked by at most this many vantages
WITNESS_PANEL = 3
#: quarantine ceiling: a flapping vantage is retried at least this often
MAX_BACKOFF_DAYS = 16
#: default fraction of targets probed by a witness panel (1/16 keeps the
#: probe overhead at 3 vantages near 1 + 2/16 = 1.125x a single vantage)
DEFAULT_OVERLAP = 0.0625

_FAST_PROTOCOLS = (Protocol.ICMP, Protocol.TCP80, Protocol.TCP443,
                   Protocol.UDP443)


@dataclass(frozen=True)
class VantageSpec:
    """Identity and location of one fleet member."""

    vid: str
    name: str
    asn: int
    country: str
    inside_gfw: bool
    seed: int


def default_vantage_specs(internet, base_seed: int, count: int) -> Tuple[VantageSpec, ...]:
    """A deterministic fleet of ``count`` vantage points.

    Vantage 0 is the paper's vantage (TUM, AS 56357, outside the GFW).
    Further members are drawn from the scenario's AS registry in sorted
    ASN order; every third member sits *inside* the Great Firewall when
    the registry has Chinese ASes, so quorum reconciliation has real
    path-dependent disagreements to resolve, not just loss noise.
    """
    if count < 1:
        raise ValueError(f"fleet needs at least one vantage, got {count}")
    from repro.asn.topology import VantagePoint

    anchor = VantagePoint()
    specs: List[VantageSpec] = [VantageSpec(
        vid="vp0", name=anchor.name, asn=anchor.asn, country=anchor.country,
        inside_gfw=anchor.inside_gfw,
        seed=mix64(base_seed ^ anchor.asn ^ 0x5EED_F1EE7),
    )]
    chinese = sorted(internet.registry.chinese_asns())
    foreign = sorted(
        info.asn for info in internet.registry if not info.is_chinese
    )
    used = {anchor.asn}
    chinese_cursor = foreign_cursor = 0
    for index in range(1, count):
        inside = bool(chinese) and index % 3 == 2
        pool, cursor = (
            (chinese, chinese_cursor) if inside else (foreign, foreign_cursor)
        )
        asn = None
        while pool and cursor < len(pool):
            candidate = pool[cursor]
            cursor += 1
            if candidate not in used:
                asn = candidate
                break
        if inside:
            chinese_cursor = cursor
        else:
            foreign_cursor = cursor
        if asn is None:
            # registry exhausted: synthesize a stable private-use ASN
            asn = 64512 + index
        used.add(asn)
        info = internet.registry.get(asn)
        specs.append(VantageSpec(
            vid=f"vp{index}",
            name=info.name if info is not None else f"vantage-{index}",
            asn=asn,
            country=info.country if info is not None else "ZZ",
            inside_gfw=inside,
            seed=mix64(base_seed ^ asn ^ 0x5EED_F1EE7),
        ))
    return tuple(specs)


@dataclass
class FleetRoster:
    """Which vantages take part in one scan day (and why the rest don't)."""

    day: int
    live: Tuple[str, ...]
    down: Tuple[str, ...] = ()
    backoff: Tuple[str, ...] = ()

    @property
    def all_down(self) -> bool:
        return not self.live


@dataclass
class FleetScanReport:
    """Reconciliation bookkeeping of one fleet scan, JSON-plain."""

    roster: FleetRoster
    resharded: int = 0
    witness_targets: int = 0
    quorum_policy: str = "majority"
    quorum_accepted: int = 0
    quorum_rejected: int = 0
    disagreements: Dict[str, int] = field(default_factory=dict)
    per_vantage: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def to_json(self) -> Dict[str, object]:
        return {
            "live": list(self.roster.live),
            "down": list(self.roster.down),
            "backoff": list(self.roster.backoff),
            "resharded": self.resharded,
            "witness_targets": self.witness_targets,
            "quorum": {
                "policy": self.quorum_policy,
                "accepted": self.quorum_accepted,
                "rejected": self.quorum_rejected,
            },
            "disagreements": dict(sorted(self.disagreements.items())),
            "per_vantage": {
                vid: dict(stats)
                for vid, stats in sorted(self.per_vantage.items())
            },
        }


class VantageFleet:
    """Coordinates per-vantage scanners and reconciles their verdicts."""

    def __init__(
        self,
        internet,
        specs: Sequence[VantageSpec],
        *,
        seed: int = 0,
        loss_rate: float = 0.03,
        quorum: str = "majority",
        overlap: float = DEFAULT_OVERLAP,
        workers: int = 1,
        chunk_size: int = 4096,
        blocklist=None,
        fault_plan=None,
        retry=None,
        metrics=None,
        tracer=None,
    ) -> None:
        if not specs:
            raise ValueError("fleet needs at least one vantage spec")
        if not 0.0 <= overlap <= 1.0:
            raise ValueError(f"overlap fraction out of range: {overlap}")
        self.specs = tuple(specs)
        self.quorum_policy = validate_policy(quorum)
        self._internet = internet
        self._blocklist = blocklist
        self._fault_plan = fault_plan
        self._tracer = tracer
        self._witness_threshold = int(overlap * _UINT64_SPAN)
        self._witness_salt = mix64(seed ^ 0x717E55)
        self._salts = tuple(
            mix64(seed ^ spec.seed ^ 0xD15C0) for spec in self.specs
        )
        #: target -> (preference ranking over spec indices, witness flag);
        #: a pure-function memo, deliberately not checkpointed
        self._rank_cache: Dict[int, Tuple[Tuple[int, ...], bool]] = {}
        #: (live indices) -> target -> (panel, resharded, dedup);
        #: derived from the rank memo, equally pure and uncheckpointed
        self._assign_cache: Dict[
            Tuple[int, ...], Dict[int, Tuple[Tuple[int, ...], bool, int]]
        ] = {}
        #: (live indices) -> (sorted pool, shard plan); see :meth:`_shard`
        self._plan_cache: Dict[Tuple[int, ...], Tuple[Tuple[int, ...], tuple]] = {}

        self.views = []
        self.scanners: List[ZMapScanner] = []
        self.engines: List[ScanEngine] = []
        self.plans = []
        for spec in self.specs:
            view = internet.vantage_view(spec.inside_gfw)
            plan = (
                fault_plan.view_for(spec.vid, spec.asn)
                if fault_plan is not None else None
            )
            scanner = ZMapScanner(
                view, blocklist=blocklist, loss_rate=loss_rate,
                seed=spec.seed, fault_plan=plan, retry=retry,
                metrics=metrics,
            )
            self.views.append(view)
            self.plans.append(plan)
            self.scanners.append(scanner)
            self.engines.append(ScanEngine(
                scanner, workers=workers, chunk_size=chunk_size,
                metrics=metrics, tracer=tracer, vantage=spec.vid,
            ))

        # durable fleet survival state — rides in checkpoints
        self._fail_counts: Dict[str, int] = {}
        self._quarantine_until: Dict[str, int] = {}

        self._m_scans = self._m_targets = None
        if metrics is not None:
            self._m_scans = metrics.counter(
                "repro_vantage_scans_total",
                "Fleet scan participations, by vantage and outcome.",
                ("vantage", "outcome"))
            self._m_targets = metrics.counter(
                "repro_vantage_targets_total",
                "Targets sharded to each vantage across the campaign.",
                ("vantage",))
            self._m_disagreements = metrics.counter(
                "repro_vantage_disagreements_total",
                "Witness targets whose vantage verdicts split, by protocol.",
                ("protocol",))
            self._m_quorum = metrics.counter(
                "repro_vantage_quorum_total",
                "Quorum decisions on disagreeing witness verdicts.",
                ("decision",))
            self._m_resharded = metrics.counter(
                "repro_vantage_resharded_total",
                "Targets probed by a non-preferred vantage because their "
                "owner was down or quarantined.")
            self._m_live = metrics.gauge(
                "repro_vantage_live", "Live fleet members at the last scan.")

    @property
    def vantage_ids(self) -> Tuple[str, ...]:
        """All member ids, in spec order."""
        return tuple(spec.vid for spec in self.specs)

    # ------------------------------------------------------------------
    # lifecycle

    def warm(self, expected_targets: int = 0) -> None:
        """Fork every member's worker pool before the campaign."""
        for engine in self.engines:
            engine.warm(expected_targets)

    def close(self) -> None:
        """Shut down all member pools (idempotent)."""
        for engine in self.engines:
            engine.close()

    # ------------------------------------------------------------------
    # survival state

    def roster(self, day: int) -> FleetRoster:
        """Who scans today — and update retry/backoff bookkeeping.

        Call exactly once per scan day (the service does, in its stand-
        down stage): failure counts and quarantine deadlines advance
        here, deterministically from (fault plan, scan schedule).  A
        member observed down during a *partial* failure is quarantined
        for ``min(2**failures, 16)`` days past the failure; a global
        outage (everyone down) mirrors singleton semantics and does not
        count against individual members.
        """
        down: List[str] = []
        candidates: List[str] = []
        for spec, plan in zip(self.specs, self.plans):
            if plan is not None and plan.vantage_down(day):
                down.append(spec.vid)
            else:
                candidates.append(spec.vid)
        backoff = [
            vid for vid in candidates
            if day < self._quarantine_until.get(vid, 0)
        ]
        live = tuple(vid for vid in candidates if vid not in backoff)
        if live:
            if down:
                for vid in down:
                    failures = self._fail_counts.get(vid, 0) + 1
                    self._fail_counts[vid] = failures
                    self._quarantine_until[vid] = day + min(
                        1 << failures, MAX_BACKOFF_DAYS
                    )
            for vid in live:
                self._fail_counts[vid] = 0
        if self._m_scans is not None:
            for vid in down:
                self._m_scans.labels(vantage=vid, outcome="down").inc()
            for vid in backoff:
                self._m_scans.labels(vantage=vid, outcome="backoff").inc()
            self._m_live.set(len(live))
        return FleetRoster(
            day=day, live=live, down=tuple(down), backoff=tuple(backoff)
        )

    def state_dict(self) -> Dict[str, object]:
        """Durable fleet state for checkpoints."""
        return {
            "fail_counts": {
                vid: count
                for vid, count in sorted(self._fail_counts.items())
                if count
            },
            "quarantine_until": dict(sorted(self._quarantine_until.items())),
            "probes_sent": [scanner.probes_sent for scanner in self.scanners],
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Restore :meth:`state_dict` output after a resume."""
        self._fail_counts = {
            str(vid): int(count)
            for vid, count in state.get("fail_counts", {}).items()
        }
        self._quarantine_until = {
            str(vid): int(day)
            for vid, day in state.get("quarantine_until", {}).items()
        }
        for scanner, probes in zip(
            self.scanners, state.get("probes_sent", ())
        ):
            scanner.probes_sent = int(probes)

    # ------------------------------------------------------------------
    # sharding

    def _rank(self, target: int) -> Tuple[Tuple[int, ...], bool]:
        """(vantage preference ranking, witness flag) for one target."""
        entry = self._rank_cache.get(target)
        if entry is None:
            tkey = (target & _M64) ^ (target >> 64)
            salts = self._salts
            ranking = tuple(sorted(
                range(len(salts)),
                key=lambda index: mix64(tkey ^ salts[index]),
                reverse=True,
            ))
            witness = mix64(tkey ^ self._witness_salt) < self._witness_threshold
            entry = (ranking, witness)
            self._rank_cache[target] = entry
        return entry

    def _shard(
        self,
        targets: Sequence[int],
        live_key: Tuple[int, ...],
        live_set: Set[int],
        panel_size: int,
    ) -> Tuple[Dict[int, List[int]], List[Tuple[int, Tuple[int, ...]]], int, int]:
        """Shard plan for (target pool, live members), cached for repeats.

        Returns ``(assignments, witness_panels, resharded, witness_dedup)``
        where ``witness_dedup`` is the total count of duplicate probes a
        witness panel adds over single-owner sharding (blocked targets
        excluded — they never enter a scanner's count).  The plan is a
        pure function of the sorted pool and the live set; campaigns
        frequently re-scan an unchanged pool (repeat scan days, candidate
        evaluation), so the latest plan per live set is kept and returned
        outright when the pool matches.  Callers must treat the returned
        structures as read-only.
        """
        pool = tuple(sorted(targets))
        cached = self._plan_cache.get(live_key)
        if cached is not None and cached[0] == pool:
            return cached[1]

        # per-(live set) assignment memo: one dict hit per already-seen
        # target even when the pool itself changed.  Entries are
        # (panel, resharded, dedup contribution).
        memo = self._assign_cache.get(live_key)
        if memo is None:
            memo = self._assign_cache[live_key] = {}
        memo_get = memo.get
        is_blocked = (
            self._blocklist.is_blocked if self._blocklist is not None
            else None
        )

        assignments: Dict[int, List[int]] = {i: [] for i in live_key}
        witness_panels: List[Tuple[int, Tuple[int, ...]]] = []
        panels_append = witness_panels.append
        resharded = 0
        witness_dedup = 0
        for target in pool:
            entry = memo_get(target)
            if entry is None:
                ranking, witness = self._rank(target)
                reshard = ranking[0] not in live_set
                if witness and panel_size > 1:
                    panel = tuple(
                        i for i in ranking if i in live_set
                    )[:panel_size]
                    dedup = len(panel) - 1
                    if is_blocked is not None and is_blocked(target):
                        dedup = 0
                else:
                    panel = (next(i for i in ranking if i in live_set),)
                    dedup = -1
                entry = (panel, reshard, dedup)
                memo[target] = entry
            panel, reshard, dedup = entry
            if reshard:
                resharded += 1
            if dedup < 0:
                assignments[panel[0]].append(target)
            else:
                for i in panel:
                    assignments[i].append(target)
                panels_append((target, panel))
                witness_dedup += dedup
        plan = (assignments, witness_panels, resharded, witness_dedup)
        self._plan_cache[live_key] = (pool, plan)
        return plan

    # ------------------------------------------------------------------
    # scanning

    def scan(
        self, targets: Sequence[int], day: int, qname: str,
        roster: Optional[FleetRoster] = None,
        carried: Optional["CarriedScan"] = None,
    ):
        """One fleet scan: shard, probe per vantage, reconcile.

        Returns ``(results, udp53, report)`` shaped exactly like the
        single-engine :meth:`~repro.scan.engine.ScanEngine.
        scan_all_protocols` output plus a :class:`FleetScanReport`.
        Deterministic for any (worker count x vantage count x fault
        schedule): targets are walked in sorted order, vantages in spec
        order, and every reconciliation decision is a pure function of
        the per-vantage responder sets.

        ``carried`` holds the incremental scheduler's carried-forward
        responders.  Scheduler priorities are fleet-global, so carried
        targets never enter sharding or witness panels — they merge
        into the reconciled result after quorum, exactly as the
        single-engine path merges them after its metrics flush.
        """
        from repro.scan.zmap import ScanResult, Udp53Result

        if roster is None:
            roster = self.roster(day)
        if roster.all_down:
            raise RuntimeError(
                f"fleet scan on day {day} with no live vantages; the "
                f"service should have stood down instead"
            )
        report = FleetScanReport(
            roster=roster, quorum_policy=self.quorum_policy
        )
        index_of = {spec.vid: i for i, spec in enumerate(self.specs)}
        live_indices = [index_of[vid] for vid in roster.live]
        live_set = set(live_indices)
        panel_size = min(len(live_indices), WITNESS_PANEL)

        live_key = tuple(live_indices)
        assignments, witness_panels, resharded, witness_dedup = self._shard(
            targets, live_key, live_set, panel_size
        )
        report.resharded = resharded
        report.witness_targets = len(witness_panels)

        # per-vantage probing, in spec order; each member's control-NS
        # traffic is folded back into the parent log deterministically
        per_results: Dict[int, Dict[Protocol, ScanResult]] = {}
        per_udp: Dict[int, Udp53Result] = {}
        tracer = self._tracer
        for i in live_indices:
            spec = self.specs[i]
            sharded = assignments[i]
            if tracer is not None:
                with tracer.span(
                    "vantage-scan", day=day, vantage=spec.vid,
                    targets=len(sharded),
                ):
                    results_i, udp_i = self.engines[i].scan_all_protocols(
                        sharded, day, qname
                    )
            else:
                results_i, udp_i = self.engines[i].scan_all_protocols(
                    sharded, day, qname
                )
            per_results[i] = results_i
            per_udp[i] = udp_i
            view_log = self.views[i].control_ns_log
            if view_log:
                self._internet.control_ns_log.extend(view_log)
                del view_log[:]
            report.per_vantage[spec.vid] = {
                "targets": len(sharded), "dissent": 0,
            }
            if self._m_scans is not None:
                self._m_scans.labels(vantage=spec.vid, outcome="ok").inc()
                self._m_targets.labels(vantage=spec.vid).inc(len(sharded))

        if tracer is not None:
            with tracer.span("reconcile", day=day):
                merged = self._reconcile(
                    day, qname, witness_panels, witness_dedup, live_indices,
                    per_results, per_udp, report, carried,
                )
        else:
            merged = self._reconcile(
                day, qname, witness_panels, witness_dedup, live_indices,
                per_results, per_udp, report, carried,
            )
        if self._m_scans is not None:
            self._m_resharded.inc(resharded)
            for label, split in sorted(report.disagreements.items()):
                self._m_disagreements.labels(protocol=label).inc(split)
            self._m_quorum.labels(decision="accepted").inc(
                report.quorum_accepted)
            self._m_quorum.labels(decision="rejected").inc(
                report.quorum_rejected)
        return merged[0], merged[1], report

    def _reconcile(
        self, day, qname, witness_panels, witness_dedup, live_indices,
        per_results, per_udp, report, carried=None,
    ):
        """Merge per-vantage verdicts into one published scan result."""
        from repro.scan.zmap import ScanResult, Udp53Result

        policy = self.quorum_policy
        witness_set = {target for target, _panel in witness_panels}

        # distinct scannable targets: members report their own counts,
        # witness targets are deduplicated across their panel
        count = sum(per_udp[i].targets for i in live_indices) - witness_dedup

        fast_sets: Dict[Protocol, Set[int]] = {}
        for protocol in _FAST_PROTOCOLS:
            merged: Set[int] = set()
            for i in live_indices:
                merged |= per_results[i][protocol].responders - witness_set
            fast_sets[protocol] = merged
        # non-witness shards are disjoint across members, so each
        # member's response map lands unconflicted in the merged one
        udp_responders: Set[int] = set()
        udp_responses: Dict[int, tuple] = {}
        for i in live_indices:
            udp_i = per_udp[i]
            keep = udp_i.responders - witness_set
            udp_responders |= keep
            if len(keep) == len(udp_i.responses):
                udp_responses.update(udp_i.responses)
            else:
                responses = udp_i.responses
                for responder in keep:
                    udp_responses[responder] = responses[responder]

        # Witness votes via set algebra: targets sharing a panel are
        # reconciled together, one intersection per (panel member,
        # protocol), so the cost scales with responder counts instead of
        # witnesses x protocols x panel.  A member's per-target vote is
        # its hit-set membership; verdicts, splits and dissent all fall
        # out of hit counts — every operation commutes, so grouping
        # changes nothing about the published sets.
        dissent = {vid: 0 for vid in report.roster.live}
        vid_of = {i: self.specs[i].vid for i in live_indices}
        groups: Dict[Tuple[int, ...], List[int]] = {}
        for target, panel in witness_panels:
            groups.setdefault(panel, []).append(target)
        udp53_label = Protocol.UDP53.label
        for panel, group_targets in sorted(groups.items()):
            group = frozenset(group_targets)
            voters = len(panel)
            needed = quorum_size(policy, voters)
            lanes = [
                (protocol.label,
                 [per_results[i][protocol].responders & group for i in panel],
                 fast_sets[protocol])
                for protocol in _FAST_PROTOCOLS
            ]
            lanes.append((
                udp53_label,
                [per_udp[i].responders & group for i in panel],
                udp_responders,
            ))
            for label, hits, merged in lanes:
                unanimous = hits[0].intersection(*hits[1:])
                if needed == voters:
                    accepted = unanimous
                    splits = set().union(*hits) - unanimous
                elif needed == 1:
                    accepted = set().union(*hits)
                    splits = accepted - unanimous
                else:
                    splits = set().union(*hits) - unanimous
                    accepted = set(unanimous)
                    for target in splits:
                        if sum(
                            1 for member_hits in hits
                            if target in member_hits
                        ) >= needed:
                            accepted.add(target)
                merged |= accepted
                if splits:
                    report.disagreements[label] = (
                        report.disagreements.get(label, 0) + len(splits)
                    )
                    accepted_splits = len(accepted) - len(unanimous)
                    report.quorum_accepted += accepted_splits
                    report.quorum_rejected += len(splits) - accepted_splits
                    # a member dissents wherever its vote differs from
                    # the verdict: hit-but-rejected or miss-but-accepted
                    for i, member_hits in zip(panel, hits):
                        dissent[vid_of[i]] += len(member_hits ^ accepted)
                if label is udp53_label:
                    # answers come from the highest-ranked vantage that
                    # heard any — path-dependent forgeries included, by
                    # design
                    for target in accepted:
                        for i in panel:
                            responses = per_udp[i].responses.get(target)
                            if responses is not None:
                                udp_responses[target] = responses
                                break
        for vid, split_votes in dissent.items():
            report.per_vantage[vid]["dissent"] = split_votes

        if carried is not None and carried.targets:
            count += carried.targets
            for protocol, replayed in zip(_FAST_PROTOCOLS, carried.fast):
                fast_sets[protocol] |= replayed
            udp_responders |= carried.udp_responders
        results = {
            protocol: ScanResult(
                protocol=protocol, day=day, targets=count,
                responders=frozenset(fast_sets[protocol]),
            )
            for protocol in _FAST_PROTOCOLS
        }
        udp53 = Udp53Result(
            day=day, qname=qname, targets=count,
            responders=udp_responders, responses=udp_responses,
        )
        return results, udp53
