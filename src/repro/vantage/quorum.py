"""Quorum policies for reconciling per-vantage responsiveness verdicts.

One vantage's "unresponsive" is another's "responding": GFW injection,
loss bursts and rate-limit exposure are all path-dependent, so verdicts
from different vantage points legitimately disagree.  A quorum policy
turns the votes of the vantages that actually probed a target into one
published verdict — the adjustable-quorum idiom (strict / majority /
any) lets operators trade false negatives against scan artifacts
without touching the coordinator.

Everything here is pure arithmetic over vote counts; the fleet in
:mod:`repro.vantage.fleet` supplies the votes.
"""

from __future__ import annotations

from typing import Sequence, Tuple

#: Supported reconciliation policies, in decreasing strictness.
QUORUM_POLICIES: Tuple[str, ...] = ("strict", "majority", "any")


def validate_policy(policy: str) -> str:
    """Return ``policy`` or raise a :class:`ValueError` naming it."""
    if policy not in QUORUM_POLICIES:
        raise ValueError(
            f"unknown quorum policy {policy!r}; "
            f"expected one of {list(QUORUM_POLICIES)}"
        )
    return policy


def quorum_size(policy: str, voters: int) -> int:
    """Positive votes needed for a responsive verdict among ``voters``.

    * ``strict``   — every voter must have seen a response;
    * ``majority`` — more than half (``voters // 2 + 1``);
    * ``any``      — a single response anywhere suffices.

    A single voter degenerates to 1 under every policy: with no second
    opinion available, the prober's verdict stands.
    """
    validate_policy(policy)
    if voters < 1:
        raise ValueError(f"quorum needs at least one voter, got {voters}")
    if policy == "strict":
        return voters
    if policy == "majority":
        return voters // 2 + 1
    return 1


def reconcile(votes: Sequence[bool], policy: str) -> bool:
    """The published verdict for one (target, protocol) vote set."""
    return sum(votes) >= quorum_size(policy, len(votes))


def is_disagreement(votes: Sequence[bool]) -> bool:
    """True when the voters split (some saw a response, some did not)."""
    positives = sum(votes)
    return 0 < positives < len(votes)
