"""Multi-vantage scan fleet: sharding, quorum reconciliation, failover."""

from repro.vantage.fleet import (
    DEFAULT_OVERLAP,
    FleetRoster,
    FleetScanReport,
    VantageFleet,
    VantageSpec,
    default_vantage_specs,
)
from repro.vantage.quorum import (
    QUORUM_POLICIES,
    is_disagreement,
    quorum_size,
    reconcile,
    validate_policy,
)

__all__ = [
    "DEFAULT_OVERLAP",
    "FleetRoster",
    "FleetScanReport",
    "QUORUM_POLICIES",
    "VantageFleet",
    "VantageSpec",
    "default_vantage_specs",
    "is_disagreement",
    "quorum_size",
    "reconcile",
    "validate_policy",
]
