"""Counters, gauges and histograms with labeled series.

A :class:`MetricsRegistry` is the single mutable home of every metric a
pipeline run produces.  Families are created idempotently (re-declaring
the same family returns the existing one; a conflicting re-declaration
raises), series are addressed by label values, and the whole registry
round-trips through a plain-JSON state dict so checkpoints can carry it.

Metric families are either *deterministic* (pure functions of the run's
seed and schedule: probe counts, alias verdicts, fault absorptions) or
*volatile* (wall-clock timings).  Only deterministic families enter
checkpoints and the canonical JSON comparison view — that split is what
lets a kill-and-resume run reproduce its metrics bit-for-bit while still
recording real durations.
"""

from __future__ import annotations

import re
from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram bucket upper bounds (seconds): sub-millisecond to
#: minutes, roughly exponential, matching common Prometheus practice.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0,
)


class MetricError(ValueError):
    """Invalid metric declaration or usage."""


class CounterSeries:
    """One monotonically increasing series."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise MetricError(f"counters only go up; got inc({amount})")
        self.value += amount


class GaugeSeries:
    """One point-in-time series."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount


class HistogramSeries:
    """One histogram series with fixed bucket bounds.

    ``counts`` holds *non-cumulative* per-bucket counts with one extra
    trailing slot for observations above the last bound (the ``+Inf``
    bucket); exporters cumulate on the way out.
    """

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: Sequence[float]) -> None:
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, value: float) -> None:
        # `le` semantics: a value equal to a bound lands in that bucket
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def merge(self, other: "HistogramSeries") -> "HistogramSeries":
        """Pointwise sum with another series over the same bounds.

        Merging is commutative and associative, so shard-local
        histograms can be combined in any order.
        """
        if self.bounds != other.bounds:
            raise MetricError(
                f"cannot merge histograms with different bounds: "
                f"{self.bounds} vs {other.bounds}"
            )
        merged = HistogramSeries(self.bounds)
        merged.counts = [a + b for a, b in zip(self.counts, other.counts)]
        merged.sum = self.sum + other.sum
        merged.count = self.count + other.count
        return merged

    def cumulative_counts(self) -> List[int]:
        """Prometheus-style cumulative bucket counts (ending at +Inf)."""
        out: List[int] = []
        running = 0
        for count in self.counts:
            running += count
            out.append(running)
        return out


_SERIES_TYPES = {
    "counter": CounterSeries,
    "gauge": GaugeSeries,
    "histogram": HistogramSeries,
}


class MetricFamily:
    """All series of one metric name, keyed by label values."""

    def __init__(
        self,
        name: str,
        kind: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        volatile: bool = False,
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        if not _METRIC_NAME_RE.match(name):
            raise MetricError(f"invalid metric name {name!r}")
        if kind not in _SERIES_TYPES:
            raise MetricError(f"unknown metric kind {kind!r}")
        for label in labelnames:
            if not _LABEL_NAME_RE.match(label):
                raise MetricError(f"invalid label name {label!r} on {name!r}")
        if len(set(labelnames)) != len(tuple(labelnames)):
            raise MetricError(f"duplicate label names on {name!r}")
        if kind == "histogram":
            bounds = tuple(buckets if buckets is not None else DEFAULT_BUCKETS)
            if list(bounds) != sorted(set(bounds)):
                raise MetricError(
                    f"histogram buckets must be strictly increasing: {bounds}"
                )
            if not bounds:
                raise MetricError(f"histogram {name!r} needs at least one bucket")
        else:
            if buckets is not None:
                raise MetricError(f"buckets are only valid for histograms ({name!r})")
            bounds = ()
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames: Tuple[str, ...] = tuple(labelnames)
        self.volatile = bool(volatile)
        self.buckets: Tuple[float, ...] = bounds
        self._series: Dict[Tuple[str, ...], Any] = {}

    # ------------------------------------------------------------------

    def _signature(self) -> Tuple[Any, ...]:
        return (self.kind, self.labelnames, self.volatile, self.buckets)

    def _new_series(self):
        if self.kind == "histogram":
            return HistogramSeries(self.buckets)
        return _SERIES_TYPES[self.kind]()

    def labels(self, **labelvalues: str):
        """The series for one label-value combination (created lazily)."""
        if set(labelvalues) != set(self.labelnames):
            raise MetricError(
                f"{self.name} expects labels {list(self.labelnames)}, "
                f"got {sorted(labelvalues)}"
            )
        key = tuple(str(labelvalues[label]) for label in self.labelnames)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = self._new_series()
        return series

    def _default_series(self):
        if self.labelnames:
            raise MetricError(
                f"{self.name} is labeled ({list(self.labelnames)}); use .labels()"
            )
        return self.labels()

    # conveniences for label-less families
    def inc(self, amount: float = 1) -> None:
        self._default_series().inc(amount)

    def dec(self, amount: float = 1) -> None:
        self._default_series().dec(amount)

    def set(self, value: float) -> None:
        self._default_series().set(value)

    def observe(self, value: float) -> None:
        self._default_series().observe(value)

    # ------------------------------------------------------------------

    def series_items(self) -> List[Tuple[Tuple[str, ...], Any]]:
        """(label values, series) pairs in sorted label order."""
        return sorted(self._series.items())

    def total(self) -> float:
        """Sum of all series values (counters/gauges) or counts (histograms)."""
        if self.kind == "histogram":
            return sum(series.count for series in self._series.values())
        return sum(series.value for series in self._series.values())


class MetricsRegistry:
    """Create-or-get metric families; the unit of export and checkpoint."""

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}

    def _declare(self, name: str, kind: str, help: str, labelnames,
                 volatile: bool, buckets=None) -> MetricFamily:
        family = self._families.get(name)
        candidate = MetricFamily(
            name, kind, help=help, labelnames=labelnames,
            volatile=volatile, buckets=buckets,
        )
        if family is None:
            self._families[name] = candidate
            return candidate
        if family._signature() != candidate._signature():
            raise MetricError(
                f"metric {name!r} re-declared with a different signature"
            )
        return family

    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = (),
                volatile: bool = False) -> MetricFamily:
        return self._declare(name, "counter", help, labelnames, volatile)

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = (),
              volatile: bool = False) -> MetricFamily:
        return self._declare(name, "gauge", help, labelnames, volatile)

    def histogram(self, name: str, help: str = "", labelnames: Sequence[str] = (),
                  buckets: Optional[Sequence[float]] = None,
                  volatile: bool = False) -> MetricFamily:
        return self._declare(name, "histogram", help, labelnames, volatile, buckets)

    # ------------------------------------------------------------------

    def families(self, include_volatile: bool = True) -> List[MetricFamily]:
        """All families in name order."""
        return [
            family for _name, family in sorted(self._families.items())
            if include_volatile or not family.volatile
        ]

    def get(self, name: str) -> Optional[MetricFamily]:
        return self._families.get(name)

    def counter_total(self, name: str) -> float:
        """Sum over all series of a family; 0 for an unknown name."""
        family = self._families.get(name)
        return 0 if family is None else family.total()

    # ------------------------------------------------------------------
    # checkpoint round-trip

    def state_dict(self, include_volatile: bool = False) -> Dict[str, Any]:
        """A plain-JSON snapshot of the registry (deterministic families
        only, unless ``include_volatile``)."""
        state: Dict[str, Any] = {}
        for family in self.families(include_volatile=include_volatile):
            series_out = []
            for labelvalues, series in family.series_items():
                if family.kind == "histogram":
                    value: Any = {
                        "counts": list(series.counts),
                        "sum": series.sum,
                        "count": series.count,
                    }
                else:
                    value = series.value
                series_out.append([list(labelvalues), value])
            entry: Dict[str, Any] = {
                "kind": family.kind,
                "help": family.help,
                "labelnames": list(family.labelnames),
                "volatile": family.volatile,
                "series": series_out,
            }
            if family.kind == "histogram":
                entry["buckets"] = list(family.buckets)
            state[family.name] = entry
        return state

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Load a :meth:`state_dict` snapshot, replacing stored series.

        Families are declared on demand, so restoring into a fresh
        registry reproduces the saved one exactly; restoring into a
        registry that already declared a family verifies the signature.
        """
        for name, entry in state.items():
            family = self._declare(
                name, str(entry["kind"]), str(entry.get("help", "")),
                tuple(entry.get("labelnames", ())),
                bool(entry.get("volatile", False)),
                buckets=entry.get("buckets"),
            )
            family._series = {}
            for labelvalues, value in entry.get("series", ()):
                series = family._new_series()
                if family.kind == "histogram":
                    counts = [int(count) for count in value["counts"]]
                    if len(counts) != len(family.buckets) + 1:
                        raise MetricError(
                            f"histogram {name!r} state has {len(counts)} bucket "
                            f"counts for {len(family.buckets)} bounds"
                        )
                    series.counts = counts
                    series.sum = float(value["sum"])
                    series.count = int(value["count"])
                else:
                    series.value = value
                family._series[tuple(str(v) for v in labelvalues)] = series
