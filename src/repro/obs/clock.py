"""Injectable monotonic clocks.

Every timing measurement in the observability layer goes through a
:class:`Clock` so that tests (and deterministic replay) can substitute
:class:`FakeClock` for the wall clock.  The contract is minimal — a
single ``now()`` returning monotonically non-decreasing seconds — which
keeps real and fake implementations trivially interchangeable.
"""

from __future__ import annotations

import time

try:  # Python >= 3.8
    from typing import Protocol as _TypingProtocol
    from typing import runtime_checkable
except ImportError:  # pragma: no cover - ancient interpreters
    _TypingProtocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[no-redef]
        return cls


@runtime_checkable
class Clock(_TypingProtocol):
    """Anything with a monotonic ``now() -> float`` (seconds)."""

    def now(self) -> float:  # pragma: no cover - protocol stub
        ...


class MonotonicClock:
    """Wall-clock time via :func:`time.perf_counter`.

    ``perf_counter`` (not ``time.time``) because span durations must
    survive NTP steps and DST changes during multi-hour campaigns.
    """

    def now(self) -> float:
        return time.perf_counter()


class FakeClock:
    """A deterministic clock advanced manually (or per ``now()`` call).

    >>> clock = FakeClock()
    >>> clock.now()
    0.0
    >>> clock.advance(1.5)
    >>> clock.now()
    1.5

    ``auto_advance`` makes every ``now()`` call tick forward by a fixed
    amount *after* returning, which gives distinct, reproducible
    timestamps without any explicit advancing:

    >>> clock = FakeClock(auto_advance=1.0)
    >>> clock.now(), clock.now(), clock.now()
    (0.0, 1.0, 2.0)
    """

    def __init__(self, start: float = 0.0, auto_advance: float = 0.0) -> None:
        if auto_advance < 0:
            raise ValueError(f"auto_advance must be >= 0, got {auto_advance}")
        self._now = float(start)
        self._auto_advance = float(auto_advance)

    def now(self) -> float:
        current = self._now
        self._now += self._auto_advance
        return current

    def advance(self, seconds: float) -> None:
        """Move time forward; moving backwards is a bug, so it raises."""
        if seconds < 0:
            raise ValueError(f"cannot advance a monotonic clock by {seconds}")
        self._now += seconds
