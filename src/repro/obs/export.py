"""Exporters: Prometheus text exposition format and canonical JSON.

Two output shapes for one registry:

* :func:`to_prometheus_text` renders the classic text exposition format
  (``# HELP`` / ``# TYPE`` headers, cumulative ``_bucket`` series with
  ``le`` labels) that any Prometheus scraper ingests;
* :func:`registry_to_dict` / :func:`metrics_to_json` render a canonical
  JSON document — keys sorted, label values inline — whose deterministic
  subset (:func:`deterministic_metrics`) is bit-identical across
  same-seed runs and across kill-and-resume.

:func:`parse_prometheus_text` is a strict grammar checker for the
exposition format used by the golden tests (and anyone who wants to
validate an export before serving it).
"""

from __future__ import annotations

import json
import math
import re
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry

_METRICS_FORMAT = "repro-metrics-v1"


def _format_value(value: float) -> str:
    """Render a sample value: integers without a trailing ``.0``."""
    if isinstance(value, bool):  # bool is an int subclass; refuse silently odd output
        value = int(value)
    if isinstance(value, int):
        return str(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if float(value).is_integer() and abs(value) < 2**53:
        return str(int(value))
    return repr(float(value))


def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _escape_label_value(text: str) -> str:
    return text.replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")


def _render_labels(labelnames: Tuple[str, ...], labelvalues: Tuple[str, ...],
                   extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    pairs = list(zip(labelnames, labelvalues)) + list(extra)
    if not pairs:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(value)}"' for name, value in pairs
    )
    return "{" + inner + "}"


def _bucket_label(bound: float) -> str:
    return "+Inf" if math.isinf(bound) else _format_value(bound)


def to_prometheus_text(registry: MetricsRegistry,
                       include_volatile: bool = True) -> str:
    """The registry in Prometheus text exposition format (version 0.0.4)."""
    lines: List[str] = []
    for family in registry.families(include_volatile=include_volatile):
        if family.help:
            lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for labelvalues, series in family.series_items():
            if family.kind == "histogram":
                cumulative = series.cumulative_counts()
                bounds = list(family.buckets) + [math.inf]
                for bound, count in zip(bounds, cumulative):
                    labels = _render_labels(
                        family.labelnames, labelvalues,
                        extra=(("le", _bucket_label(bound)),),
                    )
                    lines.append(f"{family.name}_bucket{labels} {count}")
                labels = _render_labels(family.labelnames, labelvalues)
                lines.append(f"{family.name}_sum{labels} {_format_value(series.sum)}")
                lines.append(f"{family.name}_count{labels} {series.count}")
            else:
                labels = _render_labels(family.labelnames, labelvalues)
                lines.append(f"{family.name}{labels} {_format_value(series.value)}")
    return "\n".join(lines) + ("\n" if lines else "")


# ---------------------------------------------------------------------------
# canonical JSON


def registry_to_dict(registry: MetricsRegistry,
                     include_volatile: bool = True) -> Dict[str, Any]:
    """A canonical JSON-serializable view of the registry."""
    metrics: Dict[str, Any] = {}
    for family in registry.families(include_volatile=include_volatile):
        series_out = []
        for labelvalues, series in family.series_items():
            labels = dict(zip(family.labelnames, labelvalues))
            if family.kind == "histogram":
                buckets = {
                    _bucket_label(bound): count
                    for bound, count in zip(
                        list(family.buckets) + [math.inf],
                        series.cumulative_counts(),
                    )
                }
                series_out.append({
                    "labels": labels,
                    "buckets": buckets,
                    "sum": series.sum,
                    "count": series.count,
                })
            else:
                series_out.append({"labels": labels, "value": series.value})
        metrics[family.name] = {
            "type": family.kind,
            "help": family.help,
            "volatile": family.volatile,
            "series": series_out,
        }
    return {"format": _METRICS_FORMAT, "metrics": metrics}


def metrics_to_json(registry_or_document,
                    include_volatile: bool = True) -> str:
    """The canonical document as a stable, sorted JSON string.

    Accepts a :class:`MetricsRegistry` or an already-built document
    (e.g. the output of :func:`deterministic_metrics`).
    """
    document = registry_or_document
    if isinstance(registry_or_document, MetricsRegistry):
        document = registry_to_dict(
            registry_or_document, include_volatile=include_volatile
        )
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def deterministic_metrics(document: Dict[str, Any]) -> Dict[str, Any]:
    """The deterministic subset of a :func:`registry_to_dict` document.

    Two same-seed runs (and a kill-and-resume run) agree on this view
    exactly; volatile families (wall-clock timings) are dropped.
    """
    return {
        "format": document["format"],
        "metrics": {
            name: entry
            for name, entry in document["metrics"].items()
            if not entry.get("volatile", False)
        },
    }


# ---------------------------------------------------------------------------
# exposition-format grammar checking

_PARSE_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_HELP_RE = re.compile(rf"^# HELP ({_PARSE_NAME})(?: (.*))?$")
_TYPE_RE = re.compile(
    rf"^# TYPE ({_PARSE_NAME}) (counter|gauge|histogram|summary|untyped)$"
)
_SAMPLE_RE = re.compile(
    rf"^({_PARSE_NAME})(\{{.*\}})? ([^ ]+)( [0-9-]+)?$"
)
_LABEL_RE = re.compile(r'^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _parse_label_block(block: str, line_number: int) -> Dict[str, str]:
    body = block[1:-1]
    labels: Dict[str, str] = {}
    while body:
        match = _LABEL_RE.match(body)
        if not match:
            raise ValueError(f"line {line_number}: malformed label in {block!r}")
        name, raw = match.group(1), match.group(2)
        if name in labels:
            raise ValueError(f"line {line_number}: duplicate label {name!r}")
        labels[name] = (
            raw.replace(r"\\", "\x00").replace(r"\"", '"')
            .replace(r"\n", "\n").replace("\x00", "\\")
        )
        body = body[match.end():]
        if body.startswith(","):
            body = body[1:]
        elif body:
            raise ValueError(f"line {line_number}: expected ',' in {block!r}")
    return labels


def _parse_sample_value(text: str, line_number: int) -> float:
    if text in ("+Inf", "Inf"):
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    try:
        return float(text)
    except ValueError:
        raise ValueError(
            f"line {line_number}: invalid sample value {text!r}"
        ) from None


def parse_prometheus_text(text: str) -> Dict[str, Dict[str, Any]]:
    """Parse (strictly) a text-exposition document.

    Returns ``{family name: {"type": ..., "help": ..., "samples":
    [(sample name, labels, value), ...]}}``.  Raises :class:`ValueError`
    on any grammar violation: malformed lines or labels, samples that do
    not belong to a declared family, duplicate ``TYPE`` lines, or
    histogram series whose cumulative bucket counts decrease.
    """
    families: Dict[str, Dict[str, Any]] = {}
    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            help_match = _HELP_RE.match(line)
            if help_match:
                entry = families.setdefault(
                    help_match.group(1),
                    {"type": None, "help": None, "samples": []},
                )
                entry["help"] = help_match.group(2) or ""
                continue
            type_match = _TYPE_RE.match(line)
            if type_match:
                entry = families.setdefault(
                    type_match.group(1),
                    {"type": None, "help": None, "samples": []},
                )
                if entry["type"] is not None:
                    raise ValueError(
                        f"line {line_number}: duplicate TYPE for "
                        f"{type_match.group(1)!r}"
                    )
                if entry["samples"]:
                    raise ValueError(
                        f"line {line_number}: TYPE after samples for "
                        f"{type_match.group(1)!r}"
                    )
                entry["type"] = type_match.group(2)
                continue
            if line.startswith(("# HELP", "# TYPE")):
                raise ValueError(f"line {line_number}: malformed comment {line!r}")
            continue  # free-form comment
        sample_match = _SAMPLE_RE.match(line)
        if not sample_match:
            raise ValueError(f"line {line_number}: malformed sample line {line!r}")
        sample_name, label_block, value_text = sample_match.group(1, 2, 3)
        labels = (
            _parse_label_block(label_block, line_number) if label_block else {}
        )
        value = _parse_sample_value(value_text, line_number)
        family_name = _family_of_sample(sample_name, families)
        if family_name is None:
            raise ValueError(
                f"line {line_number}: sample {sample_name!r} has no TYPE line"
            )
        families[family_name]["samples"].append((sample_name, labels, value))
    _check_histograms(families)
    return families


def _family_of_sample(sample_name: str,
                      families: Dict[str, Dict[str, Any]]) -> Optional[str]:
    if sample_name in families and families[sample_name]["type"] is not None:
        return sample_name
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            entry = families.get(base)
            if entry is not None and entry["type"] in ("histogram", "summary"):
                return base
    return None


def _check_histograms(families: Dict[str, Dict[str, Any]]) -> None:
    for name, entry in families.items():
        if entry["type"] != "histogram":
            continue
        per_series: Dict[Tuple[Tuple[str, str], ...], List[Tuple[float, float]]] = {}
        saw_inf = False
        for sample_name, labels, value in entry["samples"]:
            if not sample_name.endswith("_bucket"):
                continue
            if "le" not in labels:
                raise ValueError(f"histogram {name!r} bucket missing 'le' label")
            bound = _parse_sample_value(labels["le"], 0)
            saw_inf = saw_inf or math.isinf(bound)
            key = tuple(sorted(
                (label, val) for label, val in labels.items() if label != "le"
            ))
            per_series.setdefault(key, []).append((bound, value))
        if entry["samples"] and not saw_inf:
            raise ValueError(f"histogram {name!r} has no '+Inf' bucket")
        for key, buckets in per_series.items():
            buckets.sort()
            counts = [count for _bound, count in buckets]
            if counts != sorted(counts):
                raise ValueError(
                    f"histogram {name!r} series {dict(key)} has "
                    f"non-cumulative bucket counts"
                )
