"""Span-based stage tracing for pipeline runs.

A :class:`Tracer` records where time goes inside a scan: each pipeline
stage opens a span, spans nest (the per-scan span contains the
source-pull, APD, GFW, hygiene, probe and trace stages), and every
completed span's duration feeds an optional registry histogram
(``labelnames=("stage",)``) so exporters see stage timings without any
extra bookkeeping.

All timestamps come from the injected :class:`~repro.obs.clock.Clock`;
with a :class:`~repro.obs.clock.FakeClock` the recorded trace is fully
deterministic, which is how the span-nesting tests pin exact durations.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from repro.obs.clock import Clock, MonotonicClock
from repro.obs.metrics import MetricFamily, MetricsRegistry


@dataclass
class SpanRecord:
    """One completed (or still-open) span."""

    name: str
    start: float
    depth: int
    parent: Optional[int]  # index into the tracer's span list
    attrs: Dict[str, Any] = field(default_factory=dict)
    end: Optional[float] = None

    @property
    def duration(self) -> Optional[float]:
        """Seconds between start and end; None while the span is open."""
        return None if self.end is None else self.end - self.start


class Tracer:
    """Collects nested spans against an injectable clock."""

    def __init__(
        self,
        clock: Optional[Clock] = None,
        registry: Optional[MetricsRegistry] = None,
        histogram_name: str = "repro_stage_seconds",
    ) -> None:
        self._clock: Clock = clock if clock is not None else MonotonicClock()
        self._spans: List[SpanRecord] = []
        self._stack: List[int] = []
        self._histogram: Optional[MetricFamily] = None
        if registry is not None:
            self._histogram = registry.histogram(
                histogram_name,
                "Wall-clock duration of pipeline stages.",
                labelnames=("stage",),
                volatile=True,
            )

    @property
    def spans(self) -> List[SpanRecord]:
        """All spans in start order (open spans have ``end=None``)."""
        return list(self._spans)

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[SpanRecord]:
        """Open a span; closes (and records its duration) on exit."""
        record = SpanRecord(
            name=name,
            start=self._clock.now(),
            depth=len(self._stack),
            parent=self._stack[-1] if self._stack else None,
            attrs=dict(attrs),
        )
        index = len(self._spans)
        self._spans.append(record)
        self._stack.append(index)
        try:
            yield record
        finally:
            self._stack.pop()
            record.end = self._clock.now()
            if self._histogram is not None:
                self._histogram.labels(stage=name).observe(record.duration)

    def clear(self) -> None:
        """Drop completed spans (open spans must not be discarded)."""
        if self._stack:
            raise RuntimeError("cannot clear a tracer with open spans")
        self._spans = []

    def to_json(self) -> Dict[str, Any]:
        """A JSON-serializable trace document (closed spans only)."""
        return {
            "format": "repro-trace-v1",
            "spans": [
                {
                    "name": span.name,
                    "start": span.start,
                    "duration": span.duration,
                    "depth": span.depth,
                    "parent": span.parent,
                    "attrs": dict(span.attrs),
                }
                for span in self._spans
                if span.end is not None
            ],
        }
