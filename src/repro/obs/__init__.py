"""Observability for the hitlist pipeline (metrics, spans, exporters).

The paper's central lesson is that a measurement service rots silently
unless it measures *itself*: GFW-forged UDP/53 answers inflated the
published hitlist for years and a wholesale alias-filter removal went
unnoticed (Sec. 4).  This package is the self-measurement layer — a
dependency-free :class:`MetricsRegistry` (counters, gauges, histograms
with labeled series), span-based stage tracing driven by an injectable
:class:`Clock`, and exporters to the Prometheus text exposition format
and canonical JSON.

Determinism contract: metrics flagged *volatile* (wall-clock timings —
stage spans, checkpoint write/read durations) are excluded from
checkpoints and from the deterministic export view, so two runs with
the same seed — or a killed run resumed from a checkpoint — produce
bit-identical deterministic metrics documents.
"""

from repro.obs.clock import Clock, FakeClock, MonotonicClock
from repro.obs.export import (
    deterministic_metrics,
    metrics_to_json,
    parse_prometheus_text,
    registry_to_dict,
    to_prometheus_text,
)
from repro.obs.metrics import (
    CounterSeries,
    GaugeSeries,
    HistogramSeries,
    MetricFamily,
    MetricsRegistry,
)
from repro.obs.tracing import SpanRecord, Tracer

__all__ = [
    "Clock",
    "CounterSeries",
    "FakeClock",
    "GaugeSeries",
    "HistogramSeries",
    "MetricFamily",
    "MetricsRegistry",
    "MonotonicClock",
    "SpanRecord",
    "Tracer",
    "deterministic_metrics",
    "metrics_to_json",
    "parse_prometheus_text",
    "registry_to_dict",
    "to_prometheus_text",
]
