"""Row-normalized overlap matrices (Figures 7 and 10)."""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.hitlist.service import RetainedScan
from repro.protocols import ALL_PROTOCOLS


def overlap_matrix(
    sets: Dict[str, Set[int]], order: Sequence[str] = ()
) -> Tuple[List[str], List[List[float]]]:
    """``matrix[i][j]`` = % of set i's members also in set j.

    Rows with empty sets are dropped (nothing to normalize by), matching
    how the paper's heatmaps omit empty sources.
    """
    names = [name for name in (order or sets) if sets.get(name)]
    matrix: List[List[float]] = []
    for row_name in names:
        row_set = sets[row_name]
        matrix.append(
            [100.0 * len(row_set & sets[col_name]) / len(row_set) for col_name in names]
        )
    return names, matrix


def protocol_overlap(retained: RetainedScan) -> Tuple[List[str], List[List[float]]]:
    """Figure 10: overlap of responsive addresses between protocols.

    Uses the GFW-cleaned responder sets of one retained scan.
    """
    sets = {
        protocol.label: set(retained.cleaned_responders(protocol))
        for protocol in ALL_PROTOCOLS
    }
    return overlap_matrix(sets, order=[protocol.label for protocol in ALL_PROTOCOLS])
