"""AS-level distribution of address sets (Figures 2, 8 and 9)."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.asn.registry import AsRegistry
from repro.asn.rib import RibSnapshot


@dataclass(frozen=True)
class AsDistribution:
    """Addresses of one set ranked by origin AS."""

    label: str
    total_addresses: int
    unrouted: int
    ranked: Tuple[Tuple[int, int], ...]  # (asn, count), descending

    @property
    def as_count(self) -> int:
        """Number of distinct origin ASes."""
        return len(self.ranked)

    def share(self, rank: int) -> float:
        """Share (0-1) of the AS at 0-based ``rank``."""
        if rank >= len(self.ranked) or not self.total_addresses:
            return 0.0
        return self.ranked[rank][1] / self.total_addresses

    def top(self, count: int = 10) -> Tuple[Tuple[int, int], ...]:
        """The top-N (asn, count) pairs."""
        return self.ranked[:count]

    def cdf(self) -> List[Tuple[int, float]]:
        """Cumulative share by AS rank: [(rank, cumulative_fraction)].

        This is the series plotted (log-x) in Figures 2, 8 and 9.
        """
        points = []
        cumulative = 0
        for rank, (_asn, count) in enumerate(self.ranked, start=1):
            cumulative += count
            points.append((rank, cumulative / self.total_addresses))
        return points

    def asns_covering(self, fraction: float) -> int:
        """How many top ASes cover ``fraction`` of the addresses.

        The paper: 50 % of responsive addresses within 14 ASes; 80 % of
        the input within 10 ASes.
        """
        target = fraction * self.total_addresses
        cumulative = 0
        for rank, (_asn, count) in enumerate(self.ranked, start=1):
            cumulative += count
            if cumulative >= target:
                return rank
        return len(self.ranked)

    def describe_top(
        self, registry: Optional[AsRegistry], count: int = 5
    ) -> List[Tuple[str, int, float]]:
        """Top rows as (name, count, share %) for rendering."""
        rows = []
        for asn, addresses in self.top(count):
            name = registry.name(asn) if registry else f"AS{asn}"
            rows.append((name, addresses, 100.0 * addresses / self.total_addresses))
        return rows


def as_distribution(
    addresses: Iterable[int], rib: RibSnapshot, label: str = ""
) -> AsDistribution:
    """Rank an address set by origin AS via longest prefix match."""
    counter: Counter = Counter()
    total = 0
    unrouted = 0
    for address in addresses:
        total += 1
        asn = rib.origin_as(address)
        if asn is None:
            unrouted += 1
        else:
            counter[asn] += 1
    ranked = tuple(counter.most_common())
    return AsDistribution(
        label=label, total_addresses=total, unrouted=unrouted, ranked=ranked
    )
