"""Programmatic validation of a run against the paper's findings.

Collects the qualitative claims the benchmarks assert into one
structured report: each check records the claim, the paper's reference,
the measured value and a verdict.  `repro-cli simulate --validate` and
downstream users get a machine-readable answer to "does my scenario
still reproduce the paper?" without reading bench output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.analysis.aliased import alias_size_histogram, aliased_fraction_by_as
from repro.analysis.distribution import as_distribution
from repro.analysis.formatting import ascii_table
from repro.analysis.tables import eui64_report, table1_responsiveness
from repro.analysis.timeline import churn_series, spike_ratio
from repro.hitlist.service import HitlistHistory
from repro.protocols import Protocol


@dataclass(frozen=True)
class Check:
    """One validated claim."""

    claim: str
    paper: str
    measured: str
    passed: bool


@dataclass
class ValidationReport:
    """All checks for one run."""

    checks: List[Check]

    @property
    def passed(self) -> bool:
        """True when every check holds."""
        return all(check.passed for check in self.checks)

    @property
    def failures(self) -> List[Check]:
        return [check for check in self.checks if not check.passed]

    def render(self) -> str:
        """Human-readable table."""
        rows = [
            ["PASS" if check.passed else "FAIL", check.claim,
             check.paper, check.measured]
            for check in self.checks
        ]
        status = "all checks passed" if self.passed else (
            f"{len(self.failures)} of {len(self.checks)} checks FAILED"
        )
        return ascii_table(
            ["", "claim", "paper", "measured"], rows,
            title=f"Paper-shape validation — {status}",
        )


def validate_run(history: HitlistHistory) -> ValidationReport:
    """Check a finished run against the paper's core findings."""
    internet = history.internet
    if internet is None:
        raise ValueError("history carries no internet reference")
    final_day = max(history.retained)
    rib = internet.routing.snapshot_at(final_day)
    checks: List[Check] = []

    def check(claim: str, paper: str, measured: str, passed: bool) -> None:
        checks.append(Check(claim=claim, paper=paper, measured=measured,
                            passed=bool(passed)))

    # --- Sec. 4: GFW -----------------------------------------------------
    ratio = spike_ratio(history)
    check("published DNS spike dwarfs cleaned view", "≈700x", f"{ratio:.0f}x",
          ratio > 20)

    if history.gfw is not None and history.gfw.ever_injected:
        gfw_dist = as_distribution(history.gfw.ever_injected, rib, "gfw")
        top10 = gfw_dist.top(10)
        chinese = sum(
            1 for asn, _count in top10
            if (info := internet.registry.get(asn)) and info.is_chinese
        )
        check("GFW-impacted addresses concentrate in Chinese ASes",
              "top 10 all Chinese", f"{chinese}/10 Chinese", chinese >= 8)
        owners = set(history.gfw.forged_answer_owners)
        check("forged answers map to unrelated operators",
              "Facebook/Microsoft/Dropbox", f"{len(owners)} operators",
              bool(owners))

    # --- Table 1 shapes ---------------------------------------------------
    table = table1_responsiveness(history, rib)
    final = table.rows[-1]
    icmp = final.per_protocol[Protocol.ICMP][0]
    check("ICMP dominates responsiveness", "96.8 % of total",
          f"{icmp}/{final.total[0]}", icmp >= 0.8 * final.total[0])
    ordering = (
        icmp
        > final.per_protocol[Protocol.TCP80][0]
        >= final.per_protocol[Protocol.TCP443][0]
        > final.per_protocol[Protocol.UDP443][0]
    )
    check("protocol ordering ICMP > TCP/80 ≥ TCP/443 > UDP/443",
          "Table 1", "as measured", ordering)
    growth = final.total[0] / max(table.rows[0].total[0], 1)
    check("responsive set grows over the years", "×1.78",
          f"×{growth:.2f}", 1.1 < growth < 3.5)
    cumulative_ratio = table.cumulative[Protocol.ICMP] / max(icmp, 1)
    check("cumulative responsive dwarfs any snapshot", "×14.6",
          f"×{cumulative_ratio:.1f}", cumulative_ratio > 3)

    # --- Fig. 2 -----------------------------------------------------------
    responsive_dist = as_distribution(history.final.cleaned_any(), rib, "resp")
    check("responsive set is flat across ASes", "top AS 7.9 %",
          f"top AS {100 * responsive_dist.share(0):.1f} %",
          responsive_dist.share(0) < 0.2)

    # --- Fig. 4 -----------------------------------------------------------
    churn = churn_series(history)
    if churn:
        with_new = sum(1 for point in churn if point.new > 0)
        check("completely new responsive addresses appear regularly",
              "every scan", f"{with_new}/{len(churn)} scans",
              with_new > len(churn) // 2)

    # --- Sec. 5 -----------------------------------------------------------
    histogram = alias_size_histogram(history.final.aliased_prefixes)
    total_prefixes = sum(histogram.values())
    if total_prefixes:
        slash64 = histogram.get(64, 0) / total_prefixes
        check("/64 dominates aliased prefixes", ">90 %",
              f"{slash64:.0%}", slash64 > 0.5)
        fractions = aliased_fraction_by_as(history.final.aliased_prefixes, rib)
        fully = sum(1 for row in fractions if row.fraction > 0.9)
        check("some ASes are (almost) fully aliased", "61 ASes >90 %",
              f"{fully} ASes >90 %", fully >= 1)

    # --- Sec. 4.1 ----------------------------------------------------------
    eui64 = eui64_report(history, internet)
    if eui64.eui64_addresses:
        reuse = eui64.eui64_addresses / max(eui64.distinct_macs, 1)
        check("EUI-64 MACs recur across rotated prefixes", "×12.4",
              f"×{reuse:.1f}", reuse > 2)

    return ValidationReport(checks=checks)
