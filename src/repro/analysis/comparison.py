"""Compare two runs via their JSON summaries (A/B of scenario configs).

The ablation workflow the artefact supports: run `repro-cli simulate`
twice with different scenario JSONs, then diff the summaries — which
protocols gained, how the spike changed, where input accumulation
diverged — without keeping either run's full state alive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.analysis.formatting import ascii_table, si_format


@dataclass(frozen=True)
class MetricDelta:
    """One compared metric."""

    metric: str
    a: float
    b: float

    @property
    def delta(self) -> float:
        return self.b - self.a

    @property
    def ratio(self) -> float:
        return self.b / self.a if self.a else float("inf")


@dataclass
class RunComparison:
    """Structured diff of two run summaries."""

    label_a: str
    label_b: str
    deltas: List[MetricDelta] = field(default_factory=list)

    def get(self, metric: str) -> MetricDelta:
        """Lookup one compared metric."""
        for delta in self.deltas:
            if delta.metric == metric:
                return delta
        raise KeyError(metric)

    def render(self) -> str:
        rows = []
        for delta in self.deltas:
            ratio = f"x{delta.ratio:.2f}" if delta.a else "new"
            rows.append([
                delta.metric,
                si_format(delta.a),
                si_format(delta.b),
                si_format(delta.delta),
                ratio,
            ])
        return ascii_table(
            ["metric", self.label_a, self.label_b, "delta", "ratio"],
            rows,
            title="Run comparison",
        )


def _final_snapshot(summary: Dict[str, Any]) -> Dict[str, Any]:
    snapshots = summary.get("snapshots") or []
    if not snapshots:
        raise ValueError("summary contains no snapshots")
    return snapshots[-1]


def _peak_published_udp53(summary: Dict[str, Any]) -> int:
    return max(
        (entry["published"].get("UDP/53", 0) for entry in summary["snapshots"]),
        default=0,
    )


def compare_summaries(
    summary_a: Dict[str, Any],
    summary_b: Dict[str, Any],
    label_a: str = "A",
    label_b: str = "B",
) -> RunComparison:
    """Diff two summaries produced by :mod:`repro.hitlist.history_io`."""
    comparison = RunComparison(label_a=label_a, label_b=label_b)
    final_a = _final_snapshot(summary_a)
    final_b = _final_snapshot(summary_b)

    def add(metric: str, a: float, b: float) -> None:
        comparison.deltas.append(MetricDelta(metric=metric, a=a, b=b))

    add("scans", len(summary_a["snapshots"]), len(summary_b["snapshots"]))
    add("accumulated input", summary_a["input_total"], summary_b["input_total"])
    add("excluded (30-day)", summary_a["excluded_total"], summary_b["excluded_total"])
    add("GFW impacted", summary_a["gfw_impacted"], summary_b["gfw_impacted"])
    add("final scan pool", final_a["scan_targets"], final_b["scan_targets"])
    add("final aliased prefixes", final_a["aliased_prefixes"],
        final_b["aliased_prefixes"])
    add("final responsive (cleaned)", final_a["cleaned_total"],
        final_b["cleaned_total"])
    for label in final_a["cleaned"]:
        add(f"final {label} (cleaned)", final_a["cleaned"][label],
            final_b["cleaned"].get(label, 0))
    add("peak published UDP/53", _peak_published_udp53(summary_a),
        _peak_published_udp53(summary_b))
    add("ever responsive", summary_a["ever_responsive_total"],
        summary_b["ever_responsive_total"])
    return comparison
