"""Input coverage of the routed IPv6 internet (Sec. 4.1).

The paper: the 2022 input covers 22 k ASes — 76 % of all ASes announcing
an IPv6 prefix — and 97 k announced BGP prefixes, 62 % of all announced
prefixes (four times the 2018 coverage).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Set

from repro.asn.rib import RibSnapshot


@dataclass(frozen=True)
class CoverageReport:
    """How much of the routed internet an address set touches."""

    addresses: int
    covered_asns: int
    announcing_asns: int
    covered_prefixes: int
    announced_prefixes: int

    @property
    def asn_share(self) -> float:
        """Fraction of announcing ASes with at least one address."""
        if not self.announcing_asns:
            return 0.0
        return self.covered_asns / self.announcing_asns

    @property
    def prefix_share(self) -> float:
        """Fraction of announced prefixes with at least one address."""
        if not self.announced_prefixes:
            return 0.0
        return self.covered_prefixes / self.announced_prefixes


def coverage_report(addresses: Iterable[int], rib: RibSnapshot) -> CoverageReport:
    """Compute AS and prefix coverage of an address set."""
    covered_asns: Set[int] = set()
    covered_prefixes: Set = set()
    count = 0
    for address in addresses:
        count += 1
        prefix = rib.matching_prefix(address)
        if prefix is not None:
            covered_prefixes.add(prefix)
            asn = rib.origin_as(address)
            if asn is not None:
                covered_asns.add(asn)
    return CoverageReport(
        addresses=count,
        covered_asns=len(covered_asns),
        announcing_asns=len(rib.announcing_asns()),
        covered_prefixes=len(covered_prefixes),
        announced_prefixes=rib.prefix_count,
    )
