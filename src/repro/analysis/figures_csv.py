"""CSV data exports for every figure — the artefact a plotting script eats.

The paper's artefact release ships the analysis data behind each figure;
these writers produce the equivalent CSV series from a finished run so
any external plotting tool can regenerate the plots.
"""

from __future__ import annotations

import csv
from typing import IO, Dict, Optional

from repro._util import day_to_date
from repro.analysis.aliased import alias_size_histogram, aliased_fraction_by_as
from repro.analysis.distribution import as_distribution
from repro.analysis.overlap import protocol_overlap
from repro.analysis.timeline import churn_series, responsiveness_series
from repro.hitlist.service import HitlistHistory
from repro.protocols import ALL_PROTOCOLS


def write_fig2_csv(stream: IO[str], history: HitlistHistory, rib) -> int:
    """Fig. 2: AS-rank CDF per address set. Columns: set, rank, cdf."""
    apd = history.apd
    sets = {
        "input": history.input_ever,
        "input_no_alias": {
            a for a in history.input_ever
            if apd is None or not apd.is_aliased_address(a)
        },
        "responsive": history.final.cleaned_any(),
    }
    if history.gfw is not None:
        sets["gfw_impacted"] = history.gfw.ever_injected
    writer = csv.writer(stream)
    writer.writerow(["set", "as_rank", "cumulative_share"])
    rows = 0
    for label, addresses in sets.items():
        for rank, share in as_distribution(addresses, rib, label).cdf():
            writer.writerow([label, rank, f"{share:.6f}"])
            rows += 1
    return rows


def write_fig3_csv(stream: IO[str], history: HitlistHistory) -> int:
    """Fig. 3: per-scan responsiveness, published and cleaned."""
    writer = csv.writer(stream)
    header = ["date", "view"] + [p.label for p in ALL_PROTOCOLS] + ["total"]
    writer.writerow(header)
    rows = 0
    for point in responsiveness_series(history):
        writer.writerow(
            [point.date, "published"]
            + [point.published[p] for p in ALL_PROTOCOLS]
            + [point.published_total]
        )
        writer.writerow(
            [point.date, "cleaned"]
            + [point.cleaned[p] for p in ALL_PROTOCOLS]
            + [point.cleaned_total]
        )
        rows += 2
    return rows


def write_fig4_csv(stream: IO[str], history: HitlistHistory) -> int:
    """Fig. 4: churn decomposition per scan."""
    writer = csv.writer(stream)
    writer.writerow(["date", "new", "recurring", "gone"])
    rows = 0
    for point in churn_series(history):
        writer.writerow([point.date, point.new, point.recurring, point.gone])
        rows += 1
    return rows


def write_fig5_csv(stream: IO[str], history: HitlistHistory, rib=None) -> int:
    """Fig. 5: aliased prefix length histogram per retained snapshot."""
    writer = csv.writer(stream)
    writer.writerow(["snapshot", "prefix_length", "count"])
    rows = 0
    for day in sorted(history.retained):
        histogram = alias_size_histogram(history.retained[day].aliased_prefixes)
        for length, count in sorted(histogram.items()):
            writer.writerow([day_to_date(day).isoformat(), length, count])
            rows += 1
    return rows


def write_fig6_csv(stream: IO[str], history: HitlistHistory, rib) -> int:
    """Fig. 6: per-AS aliased space vs. announced space."""
    writer = csv.writer(stream)
    writer.writerow(["asn", "log2_aliased_addresses", "fraction_of_announced"])
    rows = 0
    for row in aliased_fraction_by_as(history.final.aliased_prefixes, rib):
        writer.writerow([row.asn, row.log2_aliased, f"{row.fraction:.6f}"])
        rows += 1
    return rows


def write_fig10_csv(stream: IO[str], history: HitlistHistory) -> int:
    """Fig. 10: protocol overlap matrix (row-normalized %)."""
    names, matrix = protocol_overlap(history.final)
    writer = csv.writer(stream)
    writer.writerow(["protocol"] + names)
    for name, row in zip(names, matrix):
        writer.writerow([name] + [f"{cell:.2f}" for cell in row])
    return len(matrix)


def write_fig7_csv(stream: IO[str], evaluation) -> int:
    """Fig. 7: new-source overlap matrix (row-normalized %)."""
    names, matrix = evaluation.overlap_matrix()
    writer = csv.writer(stream)
    writer.writerow(["source"] + names)
    for name, row in zip(names, matrix):
        writer.writerow([name] + [f"{cell:.2f}" for cell in row])
    return len(matrix)


def write_fig8_csv(stream: IO[str], evaluation, rib) -> int:
    """Fig. 8: AS-rank CDF of responsive addresses per new source."""
    writer = csv.writer(stream)
    writer.writerow(["source", "as_rank", "cumulative_share"])
    rows = 0
    for name, report in evaluation.reports.items():
        if not report.responsive_any:
            continue
        for rank, share in as_distribution(report.responsive_any, rib, name).cdf():
            writer.writerow([name, rank, f"{share:.6f}"])
            rows += 1
    return rows


def export_all_figures(
    directory, history: HitlistHistory, rib, evaluation=None
) -> Dict[str, int]:
    """Write every figure's CSV into ``directory``; returns row counts."""
    import pathlib

    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: Dict[str, int] = {}
    jobs = [
        ("fig2_as_cdf.csv", lambda s: write_fig2_csv(s, history, rib)),
        ("fig3_timeline.csv", lambda s: write_fig3_csv(s, history)),
        ("fig4_churn.csv", lambda s: write_fig4_csv(s, history)),
        ("fig5_alias_sizes.csv", lambda s: write_fig5_csv(s, history)),
        ("fig6_alias_fraction.csv", lambda s: write_fig6_csv(s, history, rib)),
        ("fig10_protocol_overlap.csv", lambda s: write_fig10_csv(s, history)),
    ]
    if evaluation is not None:
        jobs.append(("fig7_source_overlap.csv", lambda s: write_fig7_csv(s, evaluation)))
        jobs.append(("fig8_new_source_as.csv", lambda s: write_fig8_csv(s, evaluation, rib)))
    for filename, job in jobs:
        with open(directory / filename, "w", encoding="ascii", newline="") as handle:
            written[filename] = job(handle)
    return written
