"""One-shot full report: every reproduced table/figure as text.

Downstream users (and the CLI) want a single artefact summarizing a
run; this module assembles the individual analysis builders into one
readable report, optionally including the Sec. 6 new-source evaluation.
"""

from __future__ import annotations

from typing import List, Optional

from repro._util import day_to_date
from repro.analysis.aliased import (
    alias_size_histogram,
    aliased_fraction_by_as,
    domains_in_aliased_prefixes,
)
from repro.analysis.coverage import coverage_report
from repro.analysis.distribution import as_distribution
from repro.analysis.formatting import ascii_matrix, ascii_table, si_format
from repro.analysis.overlap import protocol_overlap
from repro.analysis.tables import (
    eui64_report,
    table1_responsiveness,
    table5_gfw_ases,
)
from repro.analysis.timeline import churn_series, responsiveness_series, spike_ratio
from repro.hitlist.service import HitlistHistory
from repro.obs.export import deterministic_metrics, registry_to_dict
from repro.protocols import ALL_PROTOCOLS, Protocol


def _section(title: str, body: str) -> str:
    bar = "=" * len(title)
    return f"{title}\n{bar}\n{body}\n"


def metrics_section(history: HitlistHistory) -> Optional[str]:
    """The run's deterministic counters/gauges as one table.

    Volatile families (wall-clock timings) are excluded so the section
    renders identically for same-seed and resumed runs; ``None`` when
    the history carries no metrics registry.
    """
    if history.metrics is None:
        return None
    document = deterministic_metrics(registry_to_dict(history.metrics))
    rows: List[List[str]] = []
    for name in sorted(document["metrics"]):
        entry = document["metrics"][name]
        if entry["type"] == "histogram":
            continue
        for series in entry["series"]:
            labels = ",".join(
                f"{key}={value}" for key, value in sorted(series["labels"].items())
            )
            rows.append([name, labels or "-", si_format(series["value"])])
    if not rows:
        return None
    return _section(
        "Observability — run counters",
        ascii_table(["metric", "labels", "value"], rows),
    )


def vantage_section(history: HitlistHistory) -> Optional[str]:
    """Fleet roster/quorum accounting, aggregated over the campaign.

    ``None`` for single-vantage runs (no snapshot carries a fleet
    block), keeping pre-fleet reports byte-identical.
    """
    blocks = [s.vantage for s in history.snapshots if s.vantage is not None]
    if not blocks:
        return None
    per_vantage: dict = {}
    scans = {"ok": {}, "down": {}, "backoff": {}}
    disagreements: dict = {}
    accepted = rejected = resharded = witness = 0
    for block in blocks:
        for vid in block.get("live", ()):
            scans["ok"][vid] = scans["ok"].get(vid, 0) + 1
        for vid in block.get("down", ()):
            scans["down"][vid] = scans["down"].get(vid, 0) + 1
        for vid in block.get("backoff", ()):
            scans["backoff"][vid] = scans["backoff"].get(vid, 0) + 1
        for vid, stats in block.get("per_vantage", {}).items():
            entry = per_vantage.setdefault(vid, {"targets": 0, "dissent": 0})
            entry["targets"] += stats.get("targets", 0)
            entry["dissent"] += stats.get("dissent", 0)
        for label, count in block.get("disagreements", {}).items():
            disagreements[label] = disagreements.get(label, 0) + count
        quorum = block.get("quorum", {})
        accepted += quorum.get("accepted", 0)
        rejected += quorum.get("rejected", 0)
        resharded += block.get("resharded", 0)
        witness += block.get("witness_targets", 0)
    vids = sorted(set(per_vantage) | set(scans["ok"]) | set(scans["down"])
                  | set(scans["backoff"]))
    rows = [
        [
            vid,
            scans["ok"].get(vid, 0),
            scans["down"].get(vid, 0),
            scans["backoff"].get(vid, 0),
            si_format(per_vantage.get(vid, {}).get("targets", 0)),
            per_vantage.get(vid, {}).get("dissent", 0),
        ]
        for vid in vids
    ]
    body = ascii_table(
        ["vantage", "scans", "down", "backoff", "targets", "dissent"], rows
    )
    split = ", ".join(
        f"{label}: {count}" for label, count in sorted(disagreements.items())
    ) or "none"
    body += (
        f"\nwitness targets probed by a panel: {witness}"
        f"\ntargets re-sharded around failures: {resharded}"
        f"\ndisagreements by protocol: {split}"
        f"\nquorum decisions on split votes: {accepted} accepted, "
        f"{rejected} rejected"
    )
    return _section("Vantage fleet — roster & quorum", body)


def full_report(history: HitlistHistory, evaluation=None) -> str:
    """Render the complete run summary as text."""
    internet = history.internet
    if internet is None:
        raise ValueError("history carries no internet reference")
    final_day = max(history.retained)
    rib = internet.routing.snapshot_at(final_day)
    registry = internet.registry
    sections: List[str] = []

    # --- overview -------------------------------------------------------
    last = history.snapshots[-1]
    degraded_scans = sum(1 for s in history.snapshots if s.degraded)
    overview = ascii_table(
        ["metric", "value"],
        [
            ["scans", len(history.snapshots)],
            ["last scan", day_to_date(last.day).isoformat()],
            ["accumulated input", si_format(last.input_total)],
            ["scan pool", si_format(last.scan_target_count)],
            ["aliased prefixes", last.aliased_prefix_count],
            ["responsive (cleaned)", si_format(last.cleaned_total)],
            ["UDP/53 hit rate (last scan)", f"{last.udp53_hit_rate:.2%}"],
            ["GFW-impacted ever", si_format(history.gfw.impacted_count
                                            if history.gfw else 0)],
            ["excluded (30-day)", si_format(len(history.excluded))],
            ["degraded scans", degraded_scans],
        ],
    )
    sections.append(_section("Run overview", overview))

    fleet = vantage_section(history)
    if fleet is not None:
        sections.append(fleet)

    # --- Table 1 ----------------------------------------------------------
    table1 = table1_responsiveness(history, rib)
    rows = []
    for row in table1.rows:
        cells = [day_to_date(row.day).isoformat()]
        for protocol in ALL_PROTOCOLS:
            addresses, asns = row.per_protocol[protocol]
            cells.append(f"{si_format(addresses)}/{si_format(asns)}")
        cells.append(f"{si_format(row.total[0])}/{si_format(row.total[1])}")
        rows.append(cells)
    rows.append(
        ["cumulative"]
        + [si_format(table1.cumulative[p]) for p in ALL_PROTOCOLS]
        + [si_format(table1.cumulative_total)]
    )
    sections.append(_section(
        "Table 1 — responsiveness over time (addresses/ASes)",
        ascii_table(["snapshot"] + [p.label for p in ALL_PROTOCOLS] + ["total"], rows),
    ))

    # --- Figure 3 ---------------------------------------------------------
    series = responsiveness_series(history)
    sample = series[:: max(len(series) // 16, 1)]
    fig3 = ascii_table(
        ["scan", "UDP/53 published", "UDP/53 cleaned", "total cleaned"],
        [[p.date, si_format(p.published[Protocol.UDP53]),
          si_format(p.cleaned[Protocol.UDP53]), si_format(p.cleaned_total)]
         for p in sample],
    )
    fig3 += f"\nspike/cleaned ratio: {spike_ratio(history):.0f}x"
    sections.append(_section("Figure 3 — published vs. cleaned timeline", fig3))

    # --- Figure 4 ---------------------------------------------------------
    churn = churn_series(history)
    if churn:
        sample = churn[:: max(len(churn) // 12, 1)]
        fig4 = ascii_table(
            ["scan", "new", "recurring", "gone"],
            [[p.date, p.new, p.recurring, p.gone] for p in sample],
        )
        sections.append(_section("Figure 4 — responsive-set churn", fig4))

    # --- Figure 2 ---------------------------------------------------------
    input_dist = as_distribution(history.input_ever, rib, "input")
    responsive_dist = as_distribution(history.final.cleaned_any(), rib, "responsive")
    fig2_rows = []
    for dist in (input_dist, responsive_dist):
        top = dist.describe_top(registry, count=3)
        fig2_rows.append([
            dist.label, si_format(dist.total_addresses), dist.as_count,
            ", ".join(f"{name} {share:.1f}%" for name, _count, share in top),
        ])
    sections.append(_section(
        "Figure 2 — AS concentration",
        ascii_table(["set", "addresses", "ASes", "top ASes"], fig2_rows),
    ))

    # --- Figure 5 / aliased prefixes ---------------------------------------
    histogram = alias_size_histogram(history.final.aliased_prefixes)
    fig5 = ascii_table(
        ["length", "count"],
        [[f"/{length}", count] for length, count in sorted(histogram.items())],
    )
    sections.append(_section("Figure 5 — aliased prefix sizes", fig5))

    fractions = aliased_fraction_by_as(history.final.aliased_prefixes, rib)
    fig6 = ascii_table(
        ["AS", "aliased addresses", "fraction of announced"],
        [[registry.name(row.asn), f"2^{row.log2_aliased}", f"{row.fraction:.1%}"]
         for row in fractions[:8]],
    )
    sections.append(_section("Figure 6 — most aliased ASes", fig6))

    # --- Sec. 5.2 -----------------------------------------------------------
    domains = domains_in_aliased_prefixes(
        internet.zone, history.final.aliased_prefixes, rib
    )
    sec52 = ascii_table(
        ["metric", "value"],
        [
            ["domains in aliased prefixes",
             f"{si_format(domains.domains_in_aliased)} of "
             f"{si_format(domains.domains_total)}"],
            ["prefixes hosting domains", len(domains.prefixes_hit)],
            ["ASes", len(domains.asns_hit)],
        ] + [
            [f"{name} top-list hits", hits]
            for name, hits in sorted(domains.top_list_hits.items())
        ],
    )
    sections.append(_section("Sec. 5.2 — domains in aliased prefixes", sec52))

    # --- Figure 10 -----------------------------------------------------------
    names, matrix = protocol_overlap(history.final)
    sections.append(_section(
        "Figure 10 — protocol overlap (% of row also in column)",
        ascii_matrix(names, matrix),
    ))

    # --- Table 5 --------------------------------------------------------------
    if history.gfw is not None and history.gfw.ever_injected:
        impact = table5_gfw_ases(history, rib, registry)
        table5 = ascii_table(
            ["AS", "# addresses", "%", "CDF"],
            [[row.name, si_format(row.addresses),
              f"{row.share_percent:.2f} %", f"{row.cdf_percent:.2f} %"]
             for row in impact.top(10)],
        )
        table5 += (f"\ntotal impacted: {si_format(impact.total_addresses)} "
                   f"across {impact.total_asns} ASes")
        sections.append(_section("Table 5 — GFW impact by AS", table5))

    # --- Sec. 4.1 ---------------------------------------------------------------
    eui64 = eui64_report(history, internet)
    coverage = coverage_report(history.input_ever, rib)
    sec41 = ascii_table(
        ["metric", "value"],
        [
            ["EUI-64 input addresses", si_format(eui64.eui64_addresses)],
            ["distinct MACs", si_format(eui64.distinct_macs)],
            ["top EUI-64 value in", f"{eui64.top_mac_addresses} addresses"],
            ["top MAC vendor", eui64.top_mac_vendor or "-"],
            ["input covers announcing ASes",
             f"{coverage.asn_share:.0%} (paper: 76 %)"],
            ["input covers announced prefixes",
             f"{coverage.prefix_share:.0%} (paper: 62 %)"],
        ],
    )
    sections.append(_section("Sec. 4.1 — EUI-64 & coverage analysis", sec41))

    # --- Sec. 6 -------------------------------------------------------------------
    if evaluation is not None:
        rows = []
        for name, report in sorted(
            evaluation.reports.items(), key=lambda kv: -len(kv[1].responsive_any)
        ):
            dist = as_distribution(report.responsive_any, rib, name)
            top = dist.describe_top(registry, count=1)
            rows.append([
                name, si_format(report.candidates), si_format(report.scanned),
                si_format(len(report.responsive_any)), f"{report.hit_rate:.1%}",
                f"{top[0][0]} {top[0][2]:.0f}%" if top else "-",
            ])
        combined = evaluation.combined_any()
        hitlist = set(history.final.cleaned_any())
        gain = 100.0 * len(combined - hitlist) / max(len(hitlist), 1)
        sec6 = ascii_table(
            ["source", "candidates", "scanned", "responsive", "hit rate", "top AS"],
            rows,
        )
        sec6 += (f"\nnew responsive: {si_format(len(combined))}; "
                 f"union with hitlist: {si_format(len(combined | hitlist))} "
                 f"(+{gain:.0f} %)")
        sections.append(_section("Sec. 6 / Tables 3-4 — new sources", sec6))

    obs = metrics_section(history)
    if obs is not None:
        sections.append(obs)

    return "\n".join(sections)
