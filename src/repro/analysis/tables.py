"""Builders for the paper's Tables 1, 3, 4, 5 and Sec. 4 text reports."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.distribution import as_distribution
from repro.asn.registry import AsRegistry
from repro.asn.rib import RibSnapshot
from repro.gfw.impact import GfwImpactReport, impact_report
from repro.hitlist.service import HitlistHistory
from repro.net.eui64 import is_eui64_interface_id, mac_from_interface_id, oui_of_mac
from repro.protocols import ALL_PROTOCOLS, Protocol
from repro.scan.dnsscan import ControlExperimentResult, DnsScanner
from repro.simnet.internet import SimInternet

_LOW64 = (1 << 64) - 1


# ---------------------------------------------------------------------------
# Table 1


@dataclass(frozen=True)
class Table1Row:
    """One year-snapshot row: (addresses, ASes) per protocol + totals."""

    day: int
    per_protocol: Dict[Protocol, Tuple[int, int]]
    total: Tuple[int, int]


@dataclass(frozen=True)
class Table1:
    """Responsiveness development over the four years."""

    rows: Tuple[Table1Row, ...]
    cumulative: Dict[Protocol, int]
    cumulative_total: int


def table1_responsiveness(history: HitlistHistory, rib: RibSnapshot) -> Table1:
    """Rebuild Table 1 from the retained yearly snapshots (cleaned view)."""
    rows: List[Table1Row] = []
    for day in sorted(history.retained):
        retained = history.retained[day]
        per_protocol: Dict[Protocol, Tuple[int, int]] = {}
        for protocol in ALL_PROTOCOLS:
            responders = retained.cleaned_responders(protocol)
            asns = {rib.origin_as(a) for a in responders} - {None}
            per_protocol[protocol] = (len(responders), len(asns))
        any_responsive = retained.cleaned_any()
        total_asns = {rib.origin_as(a) for a in any_responsive} - {None}
        rows.append(
            Table1Row(
                day=day,
                per_protocol=per_protocol,
                total=(len(any_responsive), len(total_asns)),
            )
        )
    cumulative = {
        protocol: len(history.ever_responsive.get(protocol, set()))
        for protocol in ALL_PROTOCOLS
    }
    return Table1(
        rows=tuple(rows),
        cumulative=cumulative,
        cumulative_total=len(history.ever_responsive_any),
    )


# ---------------------------------------------------------------------------
# Table 3


@dataclass(frozen=True)
class Table3Row:
    """One new-source row: candidate addresses and AS coverage."""

    source: str
    addresses: int
    asns: int
    asn_share_percent: float  # of all ASes announcing IPv6


def table3_new_sources(evaluation, rib: RibSnapshot) -> List[Table3Row]:
    """Table 3 from a finished Sec. 6 evaluation."""
    announcing = len(rib.announcing_asns()) or 1
    rows = []
    for name, report in evaluation.reports.items():
        if name == "passive":
            addresses = report.new_candidates
        else:
            addresses = report.candidates
        rows.append(
            Table3Row(
                source=name,
                addresses=addresses,
                asns=report.candidate_asns,
                asn_share_percent=100.0 * report.candidate_asns / announcing,
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Table 4


@dataclass(frozen=True)
class Table4Row:
    """Responsive addresses per protocol for one source + AS bias."""

    source: str
    per_protocol: Dict[Protocol, int]
    total: int
    top1: Optional[Tuple[str, float]]
    top2: Optional[Tuple[str, float]]
    total_asns: int


def _bias_row(
    name: str,
    responsive: Dict[Protocol, set],
    responsive_any: set,
    rib: RibSnapshot,
    registry: Optional[AsRegistry],
) -> Table4Row:
    distribution = as_distribution(responsive_any, rib, label=name)
    described = distribution.describe_top(registry, count=2)
    top1 = (described[0][0], described[0][2]) if len(described) > 0 else None
    top2 = (described[1][0], described[1][2]) if len(described) > 1 else None
    return Table4Row(
        source=name,
        per_protocol={p: len(responsive.get(p, set())) for p in ALL_PROTOCOLS},
        total=len(responsive_any),
        top1=top1,
        top2=top2,
        total_asns=distribution.as_count,
    )


def table4_new_responsive(
    evaluation,
    history: HitlistHistory,
    rib: RibSnapshot,
    registry: Optional[AsRegistry] = None,
) -> List[Table4Row]:
    """Table 4: per-source responsiveness + the hitlist and total rows."""
    rows = []
    ordered = sorted(
        evaluation.reports.values(), key=lambda r: -len(r.responsive_any)
    )
    for report in ordered:
        rows.append(
            _bias_row(report.name, report.responsive, report.responsive_any, rib, registry)
        )
    combined = evaluation.combined_responsive()
    combined_any = evaluation.combined_any()
    rows.append(_bias_row("new_sources", combined, combined_any, rib, registry))

    final = history.final
    hitlist_sets = {
        protocol: set(final.cleaned_responders(protocol)) for protocol in ALL_PROTOCOLS
    }
    hitlist_any = set(final.cleaned_any())
    rows.append(_bias_row("ipv6_hitlist", hitlist_sets, hitlist_any, rib, registry))

    total_sets = {
        protocol: combined.get(protocol, set()) | hitlist_sets[protocol]
        for protocol in ALL_PROTOCOLS
    }
    rows.append(
        _bias_row("total", total_sets, combined_any | hitlist_any, rib, registry)
    )
    return rows


# ---------------------------------------------------------------------------
# Table 5


def table5_gfw_ases(
    history: HitlistHistory, rib: RibSnapshot, registry: Optional[AsRegistry] = None
) -> GfwImpactReport:
    """Table 5: the top ASes of GFW-impacted addresses."""
    if history.gfw is None:
        raise ValueError("history carries no GFW filter state")
    return impact_report(history.gfw.ever_injected, rib, registry)


# ---------------------------------------------------------------------------
# Sec. 4.1: EUI-64 analysis of the accumulated input


@dataclass
class Eui64Report:
    """The paper's EUI-64 findings over the accumulated input."""

    input_total: int = 0
    eui64_addresses: int = 0
    distinct_macs: int = 0
    macs_seen_once: int = 0
    top_mac: int = 0
    top_mac_addresses: int = 0
    top_mac_vendor: Optional[str] = None
    top_mac_same_prefix: bool = False
    addresses_per_mac: Counter = field(default_factory=Counter)

    @property
    def eui64_share(self) -> float:
        """Share of input addresses with an EUI-64 interface ID."""
        return self.eui64_addresses / self.input_total if self.input_total else 0.0


def eui64_report(history: HitlistHistory, internet: SimInternet) -> Eui64Report:
    """Extract MACs from EUI-64 input addresses (Sec. 4.1)."""
    report = Eui64Report()
    mac_counts: Counter = Counter()
    mac_networks: Dict[int, set] = {}
    for address in history.input_ever:
        report.input_total += 1
        iid = address & _LOW64
        if not is_eui64_interface_id(iid):
            continue
        mac = mac_from_interface_id(iid)
        report.eui64_addresses += 1
        mac_counts[mac] += 1
        mac_networks.setdefault(mac, set()).add(address >> 96)  # /32 network
    report.distinct_macs = len(mac_counts)
    report.macs_seen_once = sum(1 for count in mac_counts.values() if count == 1)
    report.addresses_per_mac = mac_counts
    if mac_counts:
        top_mac, top_count = mac_counts.most_common(1)[0]
        report.top_mac = top_mac
        report.top_mac_addresses = top_count
        report.top_mac_vendor = internet.oui_registry.vendor(oui_of_mac(top_mac))
        report.top_mac_same_prefix = len(mac_networks[top_mac]) == 1
    return report


# ---------------------------------------------------------------------------
# Sec. 4.2: DNS quality of the cleaned UDP/53 responders


def dns_quality_report(
    history: HitlistHistory, internet: SimInternet, day: int
) -> ControlExperimentResult:
    """Run the hash-subdomain control experiment on cleaned responders."""
    retained = history.retained_at(day)
    targets = sorted(retained.cleaned_responders(Protocol.UDP53))
    scanner = DnsScanner(internet, seed=day)
    return scanner.control_experiment(targets, retained.day)
