"""Timeline analyses over the scan history (Figures 3 and 4)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro._util import day_to_date
from repro.hitlist.service import HitlistHistory
from repro.protocols import ALL_PROTOCOLS, Protocol


@dataclass(frozen=True)
class TimelinePoint:
    """One scan's responsive counts in both views."""

    day: int
    published: Dict[Protocol, int]
    cleaned: Dict[Protocol, int]
    published_total: int
    cleaned_total: int

    @property
    def date(self) -> str:
        return day_to_date(self.day).isoformat()


def responsiveness_series(history: HitlistHistory) -> List[TimelinePoint]:
    """Figure 3: per-protocol responsiveness, published vs. GFW-cleaned."""
    series = []
    for snapshot in history.snapshots:
        series.append(
            TimelinePoint(
                day=snapshot.day,
                published=dict(snapshot.published_counts),
                cleaned=dict(snapshot.cleaned_counts),
                published_total=snapshot.published_total,
                cleaned_total=snapshot.cleaned_total,
            )
        )
    return series


def spike_ratio(history: HitlistHistory) -> float:
    """Peak published UDP/53 count relative to the cleaned view.

    The paper's headline: the published hitlist peaked above 100 M
    DNS-responsive addresses while the cleaned count stayed near 140 k.
    """
    peak_published = max(
        (s.published_counts.get(Protocol.UDP53, 0) for s in history.snapshots),
        default=0,
    )
    peak_cleaned = max(
        (s.cleaned_counts.get(Protocol.UDP53, 0) for s in history.snapshots),
        default=0,
    )
    return peak_published / peak_cleaned if peak_cleaned else float("inf")


@dataclass(frozen=True)
class ChurnPoint:
    """Figure 4: per-scan churn decomposition."""

    day: int
    new: int  # responsive for the first time ever
    recurring: int  # responsive again after a gap
    gone: int  # responsive last scan, not this one

    @property
    def date(self) -> str:
        return day_to_date(self.day).isoformat()


def churn_series(history: HitlistHistory) -> List[ChurnPoint]:
    """Figure 4 series (skips the bootstrap scan)."""
    return [
        ChurnPoint(
            day=snapshot.day,
            new=snapshot.churn_new,
            recurring=snapshot.churn_recurring,
            gone=snapshot.churn_gone,
        )
        for snapshot in history.snapshots[1:]
    ]


def always_responsive_share(history: HitlistHistory) -> Tuple[int, float]:
    """Addresses responsive in the final scan that never disappeared.

    Approximates the paper's "176.6 k responsive throughout the entire
    period (5.4 % of 3.2 M)" using first-scan ∩ final-scan membership of
    the ever-responsive bookkeeping.
    """
    final = history.final.cleaned_any()
    if not final:
        return 0, 0.0
    # addresses responsive at every retained scan (coarse but faithful
    # to what the retained data can support)
    stable = set(final)
    for retained in history.retained.values():
        stable &= retained.cleaned_any()
    return len(stable), len(stable) / len(final)
