"""Rendering helpers: the paper's SI notation and ASCII tables."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def si_format(value: float, digits: int = 1) -> str:
    """Format counts the way the paper's tables do.

    >>> si_format(1_700_000)
    '1.7 M'
    >>> si_format(10_100)
    '10.1 k'
    >>> si_format(593)
    '593'
    >>> si_format(0)
    '0'
    """
    if value < 0:
        return "-" + si_format(-value, digits)
    for threshold, suffix in ((1_000_000_000, "G"), (1_000_000, "M"), (1_000, "k")):
        if value >= threshold:
            scaled = value / threshold
            text = f"{scaled:.{digits}f}".rstrip("0").rstrip(".")
            return f"{text} {suffix}"
    if value == int(value):
        return str(int(value))
    return f"{value:.{digits}f}"


def percent(value: float, digits: int = 1) -> str:
    """Render a 0-100 percentage like the paper ("46.44 %")."""
    return f"{value:.{digits}f} %"


def ascii_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render a right-padded ASCII table for bench output.

    >>> print(ascii_table(["a", "b"], [[1, "x"]]))
    a  b
    -  -
    1  x
    """
    materialized: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip())
    lines.append("  ".join("-" * w for w in widths))
    for row in materialized:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


def ascii_matrix(
    names: Sequence[str], matrix: Sequence[Sequence[float]], title: Optional[str] = None
) -> str:
    """Render a row-normalized percentage matrix (Figs. 7/10 style)."""
    headers = [""] + [name[:12] for name in names]
    rows = []
    for name, row in zip(names, matrix):
        rows.append([name[:12]] + [f"{cell:5.1f}" for cell in row])
    return ascii_table(headers, rows, title=title)


def ascii_series(
    points: Sequence[tuple], label_x: str = "x", label_y: str = "y", width: int = 48
) -> str:
    """A crude ASCII sparkline table for timeline figures."""
    if not points:
        return "(no data)"
    peak = max(value for _x, value in points) or 1
    lines = [f"{label_x:>10}  {label_y}"]
    for x, value in points:
        bar = "#" * max(int(width * value / peak), 0)
        lines.append(f"{str(x):>10}  {si_format(value):>8}  {bar}")
    return "\n".join(lines)
