"""Analysis toolkit: every table and figure of the paper, from history.

Each module regenerates one family of results from a finished
:class:`~repro.hitlist.service.HitlistHistory` (plus, where the paper
performed dedicated follow-up scans, from the simulated internet):

* :mod:`repro.analysis.distribution` — AS CDFs (Figs. 2, 8, 9)
* :mod:`repro.analysis.timeline` — responsiveness & churn (Figs. 3, 4)
* :mod:`repro.analysis.aliased` — aliased prefix studies (Figs. 5, 6,
  Table 2, Secs. 5.1/5.2)
* :mod:`repro.analysis.overlap` — protocol/source overlap (Figs. 7, 10)
* :mod:`repro.analysis.tables` — Tables 1, 3, 4, 5 and the Sec. 4
  text-level reports (EUI-64, DNS quality control)
* :mod:`repro.analysis.formatting` — the paper's "3.2 M / 15.7 k"
  notation and ASCII rendering for benches
"""

from repro.analysis.coverage import CoverageReport, coverage_report
from repro.analysis.formatting import ascii_table, si_format
from repro.analysis.distribution import AsDistribution, as_distribution
from repro.analysis.timeline import churn_series, responsiveness_series
from repro.analysis.overlap import overlap_matrix, protocol_overlap
from repro.analysis.aliased import (
    alias_size_histogram,
    aliased_fraction_by_as,
    aliased_prefix_protocols,
    domains_in_aliased_prefixes,
    fingerprint_survey,
    tbt_survey,
)
from repro.analysis.tables import (
    eui64_report,
    table1_responsiveness,
    table3_new_sources,
    table4_new_responsive,
    table5_gfw_ases,
)

__all__ = [
    "AsDistribution",
    "CoverageReport",
    "coverage_report",
    "alias_size_histogram",
    "aliased_fraction_by_as",
    "aliased_prefix_protocols",
    "as_distribution",
    "ascii_table",
    "churn_series",
    "domains_in_aliased_prefixes",
    "eui64_report",
    "fingerprint_survey",
    "overlap_matrix",
    "protocol_overlap",
    "responsiveness_series",
    "si_format",
    "table1_responsiveness",
    "table3_new_sources",
    "table4_new_responsive",
    "table5_gfw_ases",
    "tbt_survey",
]
