"""Aliased (fully responsive) prefix analyses — Sec. 5 of the paper.

Covers Figure 5 (size distribution over the years), Figure 6 (per-AS
aliased address-space fraction), Table 2 (per-protocol responsiveness of
one random address per prefix), the Sec. 5.1 fingerprint and Too Big
Trick surveys, and the Sec. 5.2 hosted-domain analysis.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.asn.rib import RibSnapshot
from repro.hitlist.apd import DetectedAlias
from repro.net.prefix import IPv6Prefix
from repro.net.random_addr import pseudo_random_address
from repro.net.trie import PrefixTrie
from repro.protocols import ALL_PROTOCOLS, Protocol
from repro.scan.fingerprint import FingerprintClass, TcpFingerprinter
from repro.scan.tbt import TbtOutcome, TbtProber
from repro.scan.zmap import ZMapScanner
from repro.simnet.dnszone import TOP_LIST_NAMES, DnsZone
from repro.simnet.internet import SimInternet


def _prefixes(aliases: Iterable) -> List[IPv6Prefix]:
    return [getattr(alias, "prefix", alias) for alias in aliases]


def _alias_trie(prefixes: Iterable[IPv6Prefix]) -> PrefixTrie:
    trie: PrefixTrie[bool] = PrefixTrie()
    for prefix in prefixes:
        trie[prefix] = True
    return trie


def origin_of(prefix: IPv6Prefix, rib: RibSnapshot) -> Optional[int]:
    """Origin AS of a detected prefix (LPM on its network address)."""
    return rib.origin_as(prefix.value)


# ---------------------------------------------------------------------------
# Figure 5


def alias_size_histogram(
    aliases: Iterable,
    rib: Optional[RibSnapshot] = None,
    exclude_asns: Iterable[int] = (),
) -> Counter:
    """Prefix-length histogram of detected aliased prefixes.

    ``exclude_asns`` reproduces the paper's 2022 plot, which excludes
    Trafficforce (61.6 % of all prefixes after its event).
    """
    excluded = set(exclude_asns)
    histogram: Counter = Counter()
    for prefix in _prefixes(aliases):
        if excluded:
            if rib is None:
                raise ValueError("exclude_asns requires a rib")
            if origin_of(prefix, rib) in excluded:
                continue
        histogram[prefix.length] += 1
    return histogram


# ---------------------------------------------------------------------------
# Figure 6


@dataclass(frozen=True)
class AliasedSpaceRow:
    """One AS's aliased address space vs. announced space."""

    asn: int
    aliased_addresses: int
    announced_addresses: int

    @property
    def log2_aliased(self) -> int:
        """The x-axis of Figure 6 (power-of-two bin)."""
        return self.aliased_addresses.bit_length() - 1

    @property
    def fraction(self) -> float:
        """The y-axis of Figure 6."""
        if not self.announced_addresses:
            return 0.0
        return self.aliased_addresses / self.announced_addresses


def aliased_fraction_by_as(
    aliases: Iterable, rib: RibSnapshot
) -> List[AliasedSpaceRow]:
    """Per-AS aliased space vs. announced space (nested prefixes deduped)."""
    by_asn: Dict[int, List[IPv6Prefix]] = defaultdict(list)
    for prefix in _prefixes(aliases):
        asn = origin_of(prefix, rib)
        if asn is not None:
            by_asn[asn].append(prefix)
    rows = []
    for asn, prefixes in by_asn.items():
        prefixes.sort()  # address order; shorter sorts before its subnets
        total = 0
        last_covering: Optional[IPv6Prefix] = None
        for prefix in prefixes:
            if last_covering is not None and last_covering.contains_prefix(prefix):
                continue  # nested inside an already counted prefix
            total += prefix.num_addresses
            last_covering = prefix
        rows.append(
            AliasedSpaceRow(
                asn=asn,
                aliased_addresses=total,
                announced_addresses=rib.announced_address_count(asn),
            )
        )
    rows.sort(key=lambda row: -row.aliased_addresses)
    return rows


# ---------------------------------------------------------------------------
# Table 2


def aliased_prefix_protocols(
    internet: SimInternet,
    aliases: Iterable,
    day: int,
    exclude_asns: Iterable[int] = (212144,),
    qname: str = "www.google.com",
) -> Dict[Protocol, Tuple[int, int]]:
    """Table 2: (prefix count, AS count) responsive per protocol.

    One pseudo-random address per prefix is probed — "to reduce impact"
    as the paper puts it — using the standard modules; GFW-injected DNS
    responses are discarded.
    """
    rib = internet.routing.snapshot_at(day)
    excluded = set(exclude_asns)
    targets: Dict[int, Tuple[IPv6Prefix, Optional[int]]] = {}
    for prefix in _prefixes(aliases):
        asn = origin_of(prefix, rib)
        if asn in excluded:
            continue
        targets[pseudo_random_address(prefix, nonce=day)] = (prefix, asn)
    scanner = ZMapScanner(internet, loss_rate=0.0)
    address_list = list(targets)
    results, udp53 = scanner.scan_all_protocols(address_list, day, qname)
    from repro.gfw.filter import GfwFilter

    cleaning = GfwFilter().clean_scan(udp53)
    outcome: Dict[Protocol, Tuple[int, int]] = {}
    for protocol in ALL_PROTOCOLS:
        if protocol is Protocol.UDP53:
            responders = cleaning.clean_responders
        else:
            responders = set(results[protocol].responders)
        asns = {
            targets[address][1] for address in responders if targets[address][1]
        }
        outcome[protocol] = (len(responders), len(asns))
    return outcome


# ---------------------------------------------------------------------------
# Sec. 5.1 surveys


@dataclass
class FingerprintSurvey:
    """Aggregate fingerprint evidence across aliased prefixes."""

    total: int = 0
    counts: Dict[FingerprintClass, int] = field(default_factory=dict)

    @property
    def fingerprintable(self) -> int:
        return self.total - self.counts.get(FingerprintClass.NO_TCP, 0)

    @property
    def uniform_share(self) -> float:
        """Share of fingerprintable prefixes with fully uniform features."""
        if not self.fingerprintable:
            return 0.0
        return self.counts.get(FingerprintClass.UNIFORM, 0) / self.fingerprintable


def fingerprint_survey(
    internet: SimInternet, aliases: Iterable, day: int
) -> FingerprintSurvey:
    """Fingerprint every aliased prefix (Sec. 5.1's TCP analysis)."""
    fingerprinter = TcpFingerprinter(internet)
    survey = FingerprintSurvey()
    for prefix in _prefixes(aliases):
        verdict = fingerprinter.fingerprint_prefix(prefix, day).verdict
        survey.total += 1
        survey.counts[verdict] = survey.counts.get(verdict, 0) + 1
    return survey


@dataclass
class TbtSurvey:
    """Aggregate Too Big Trick outcomes."""

    total: int = 0
    counts: Dict[TbtOutcome, int] = field(default_factory=dict)
    partial_by_asn: Counter = field(default_factory=Counter)

    @property
    def measurable(self) -> int:
        return self.total - self.counts.get(TbtOutcome.NOT_APPLICABLE, 0)

    def share(self, outcome: TbtOutcome) -> float:
        """Share of measurable prefixes with the given outcome."""
        if not self.measurable:
            return 0.0
        return self.counts.get(outcome, 0) / self.measurable


def tbt_survey(
    internet: SimInternet,
    aliases: Iterable,
    day: int,
    rib: Optional[RibSnapshot] = None,
) -> TbtSurvey:
    """Run the Too Big Trick against every aliased prefix."""
    prober = TbtProber(internet)
    survey = TbtSurvey()
    rib = rib or internet.routing.snapshot_at(day)
    internet.reset_pmtu_caches()
    for prefix in _prefixes(aliases):
        result = prober.probe_prefix(prefix, day)
        survey.total += 1
        survey.counts[result.outcome] = survey.counts.get(result.outcome, 0) + 1
        if result.outcome is TbtOutcome.PARTIAL_SHARED:
            asn = origin_of(prefix, rib)
            if asn is not None:
                survey.partial_by_asn[asn] += 1
    internet.reset_pmtu_caches()
    return survey


# ---------------------------------------------------------------------------
# Sec. 5.2: domains hosted in aliased prefixes


@dataclass
class DomainAliasReport:
    """Domains resolving into fully responsive prefixes."""

    domains_total: int = 0
    domains_in_aliased: int = 0
    prefixes_hit: Set[IPv6Prefix] = field(default_factory=set)
    asns_hit: Set[int] = field(default_factory=set)
    domains_per_prefix: Counter = field(default_factory=Counter)
    top_list_hits: Dict[str, int] = field(default_factory=dict)
    top_list_rank_hits: Dict[str, Dict[int, int]] = field(default_factory=dict)
    aliased_addresses_seen: Set[int] = field(default_factory=set)

    def prefixes_of_asn(self, asn: int, rib: RibSnapshot) -> List[IPv6Prefix]:
        """Hit prefixes originated by one AS (e.g. Cloudflare)."""
        return [p for p in self.prefixes_hit if rib.origin_as(p.value) == asn]

    def mean_domains_per_prefix(self, prefixes: Iterable[IPv6Prefix]) -> float:
        counts = [self.domains_per_prefix.get(p, 0) for p in prefixes]
        return sum(counts) / len(counts) if counts else 0.0

    def max_domains_in_prefix(self) -> int:
        if not self.domains_per_prefix:
            return 0
        return max(self.domains_per_prefix.values())


def domains_in_aliased_prefixes(
    zone: DnsZone,
    aliases: Iterable,
    rib: RibSnapshot,
    rank_thresholds: Sequence[int] = (1_000, 100_000),
) -> DomainAliasReport:
    """Join the DNS zone against detected aliased prefixes (Sec. 5.2)."""
    prefixes = _prefixes(aliases)
    trie: PrefixTrie[IPv6Prefix] = PrefixTrie()
    for prefix in prefixes:
        trie[prefix] = prefix
    report = DomainAliasReport()
    report.top_list_hits = {name: 0 for name in TOP_LIST_NAMES}
    report.top_list_rank_hits = {
        name: {threshold: 0 for threshold in rank_thresholds} for name in TOP_LIST_NAMES
    }
    for domain in zone.domains():
        report.domains_total += 1
        hit_prefixes = set()
        for address in domain.addresses:
            match = trie.longest_match(address)
            if match is not None:
                hit_prefixes.add(match[1])
                report.aliased_addresses_seen.add(address)
        if not hit_prefixes:
            continue
        report.domains_in_aliased += 1
        for prefix in hit_prefixes:
            report.prefixes_hit.add(prefix)
            report.domains_per_prefix[prefix] += 1
            asn = rib.origin_as(prefix.value)
            if asn is not None:
                report.asns_hit.add(asn)
        for top_list in TOP_LIST_NAMES:
            rank = domain.rank(top_list)
            if rank is None:
                continue
            report.top_list_hits[top_list] += 1
            for threshold in rank_thresholds:
                if rank <= threshold:
                    report.top_list_rank_hits[top_list][threshold] += 1
    return report
