"""Command-line interface for the reproduction toolkit.

Subcommands mirror how the paper's artefacts are used:

* ``simulate`` — build a world, run the hitlist pipeline, publish the
  responsive/aliased files and a text report into an output directory;
* ``evaluate`` — additionally run the Sec. 6 new-source evaluation;
* ``generate`` — run one target generation algorithm over a seed file;
* ``aggregate`` — aggregate a prefix list (drop nested, merge siblings);
* ``serve`` — serve a publication snapshot store (``--publish-dir``)
  over HTTP: full artifacts, deltas, prefix/ASN queries, ``/metrics``,
  with a selectable backend (``--backend asyncio|prefork|thread``);
* ``config`` — dump a scenario configuration as JSON for editing.

Run ``python -m repro.cli --help`` for details.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional, Sequence

from repro.analysis.figures_csv import export_all_figures
from repro.analysis.report import full_report
from repro.analysis.validation import validate_run
from repro.hitlist import HitlistService, default_scan_days
from repro.hitlist.export import (
    read_address_list,
    write_address_list,
    write_aliased_prefixes,
)
from repro.hitlist.history_io import save_history_summary
from repro.hitlist.service import ServiceSettings
from repro.net.aggregate import merge_adjacent
from repro.net.prefix import IPv6Prefix
from repro.simnet import build_internet, default_config, small_config
from repro.simnet.config_io import load_config, save_config
from repro.tga import (
    DistanceClustering,
    EntropyIp,
    SixGan,
    SixGcVae,
    SixGraph,
    SixHit,
    SixTree,
    SixVecLm,
    evaluate_new_sources,
)
from repro.tga.evaluation import default_generators

_GENERATORS = {
    "6tree": SixTree,
    "6graph": SixGraph,
    "6gan": SixGan,
    "6veclm": SixVecLm,
    "6gcvae": SixGcVae,
    "6hit": SixHit,
    "distance-clustering": DistanceClustering,
    "entropy-ip": EntropyIp,
}


def _resolve_scenario_context(args: argparse.Namespace):
    """The expanded-scenario context behind ``--config``, if any.

    When ``--config`` points at an expanded-scenario artifact (the
    output of ``repro-cli scenario expand``), the run inherits the
    scenario's settings overrides, fault plan and run schedule — not
    just its world config.  ``--seed`` applies *after* expansion and is
    recorded in the artifact's provenance (``seed_override``).
    """
    path = getattr(args, "config", None)
    if not path:
        return None
    import json

    from repro.scenario.artifact import artifact_from_dict, is_expanded_artifact

    with open(path, "r", encoding="ascii") as handle:
        data = json.load(handle)
    if not is_expanded_artifact(data):
        return None
    expanded = artifact_from_dict(data)
    if getattr(args, "seed", None) is not None:
        expanded = expanded.with_seed(args.seed)
    return expanded


def _resolve_config(args: argparse.Namespace):
    if getattr(args, "config", None):
        with open(args.config, "r", encoding="ascii") as handle:
            config = load_config(handle)
    else:
        preset = getattr(args, "preset", "small")
        if preset == "default":
            config = default_config()
        else:
            config = small_config()
    # the seed override applies last — after any file/scenario loading —
    # so `--config expanded.json --seed N` reproduces under seed N
    if getattr(args, "seed", None) is not None:
        config = config.with_seed(args.seed)
    return config


def _scan_days(args: argparse.Namespace, config, run=None) -> List[int]:
    """The scan schedule: CLI flags override the scenario's ``run:``."""
    until = (
        getattr(args, "days", None)
        or (run or {}).get("days")
        or config.final_day
    )
    step = getattr(args, "interval", None) or (run or {}).get("interval")
    if step:
        return list(range(0, until + 1, step))
    return [day for day in default_scan_days(config.final_day) if day <= until]


def _parse_vantage_faults(spec: str):
    """``'vp1:10-20,vp2:14-18'`` -> scoped outage entries."""
    from repro.runtime.faults import VantageOutage

    entries = []
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        try:
            vid, _, window = token.rpartition(":")
            start, _, end = window.partition("-")
            if not vid:
                raise ValueError(token)
            entries.append(VantageOutage(
                start_day=int(start), end_day=int(end), vantage=vid,
            ))
        except ValueError:
            raise SystemExit(
                f"--vantage-faults: cannot parse {token!r}; "
                f"expected 'vid:START-END'"
            )
    return tuple(entries)


def _load_faults(args: argparse.Namespace, base=None):
    """The run's fault plan: ``--faults`` replaces a scenario's plan
    (``base``); ``--vantage-faults`` merges into whichever is active."""
    path = getattr(args, "faults", None)
    plan = base
    if path:
        from repro.runtime import load_fault_plan

        with open(path, "r", encoding="ascii") as handle:
            plan = load_fault_plan(handle)
    extra = getattr(args, "vantage_faults", None)
    if extra:
        import dataclasses

        from repro.runtime.faults import FaultPlan

        entries = _parse_vantage_faults(extra)
        if plan is None:
            plan = FaultPlan(outages=entries)
        else:
            plan = dataclasses.replace(plan, outages=plan.outages + entries)
        # round-trip through the validating decoder so overlapping or
        # out-of-range windows fail here, not three stages into a run
        plan = FaultPlan.from_dict(plan.to_dict())
    return plan


def _run_pipeline(args: argparse.Namespace):
    resume_path = getattr(args, "resume", None)
    checkpoint_dir = getattr(args, "checkpoint_dir", None)
    checkpoint_every = getattr(args, "checkpoint_every", None) or (
        1 if checkpoint_dir else None
    )
    if checkpoint_dir:
        pathlib.Path(checkpoint_dir).mkdir(parents=True, exist_ok=True)
    publish_dir = getattr(args, "publish_dir", None)
    if resume_path:
        # config, settings and fault plan come from the checkpoint
        service = HitlistService.resume(resume_path)
        history = service.run(
            checkpoint_every=checkpoint_every, checkpoint_path=checkpoint_dir,
            publish_dir=publish_dir,
        )
        return service.config, service.internet, history, service
    context = _resolve_scenario_context(args)
    if context is not None:
        # scenario-context run: the artifact's config/settings/faults/run
        # are the baseline; explicit CLI flags still override
        import dataclasses

        config = context.config
        overrides = {}
        for attr in ("retry_attempts", "scan_workers", "scan_chunk_size",
                     "vantages", "quorum", "scan_mode", "refresh_interval",
                     "sample_rate"):
            value = getattr(args, attr, None)
            if value is not None:
                overrides[attr] = value
        settings = dataclasses.replace(context.settings(), **overrides)
        fault_plan = _load_faults(args, base=context.fault_plan)
        scan_days = _scan_days(args, config, run=context.run)
    else:
        config = _resolve_config(args)
        sample_rate = getattr(args, "sample_rate", None)
        settings = ServiceSettings(
            gfw_filter_deploy_day=config.gfw_filter_deploy_day,
            retry_attempts=getattr(args, "retry_attempts", None) or 1,
            scan_workers=getattr(args, "scan_workers", None) or 1,
            scan_chunk_size=getattr(args, "scan_chunk_size", None) or 4096,
            vantages=getattr(args, "vantages", None) or 1,
            quorum=getattr(args, "quorum", None) or "majority",
            scan_mode=getattr(args, "scan_mode", None) or "full",
            refresh_interval=getattr(args, "refresh_interval", None) or 6,
            # 0.0 is a legal rate (never confirm), so no `or` defaulting
            sample_rate=sample_rate if sample_rate is not None else 0.0625,
        )
        fault_plan = _load_faults(args)
        scan_days = _scan_days(args, config)
    internet = build_internet(config)
    service = HitlistService(
        internet, config, settings=settings, fault_plan=fault_plan
    )
    history = service.run(
        scan_days,
        checkpoint_every=checkpoint_every,
        checkpoint_path=checkpoint_dir,
        publish_dir=publish_dir,
    )
    return config, internet, history, service


def _write_observability(args: argparse.Namespace, service) -> None:
    """Honor the --metrics-json / --metrics-prom / --trace flags."""
    from repro.obs import (
        deterministic_metrics,
        metrics_to_json,
        registry_to_dict,
        to_prometheus_text,
    )

    metrics_json = getattr(args, "metrics_json", None)
    if metrics_json:
        # deterministic view only: byte-identical across same-seed runs
        # and kill-and-resume, so files can be diffed directly
        document = deterministic_metrics(registry_to_dict(service.metrics))
        pathlib.Path(metrics_json).write_text(metrics_to_json(document))
        print(f"wrote metrics (deterministic view) to {metrics_json}")
    metrics_prom = getattr(args, "metrics_prom", None)
    if metrics_prom:
        pathlib.Path(metrics_prom).write_text(
            to_prometheus_text(service.metrics)
        )
        print(f"wrote Prometheus exposition to {metrics_prom}")
    trace_path = getattr(args, "trace", None)
    if trace_path:
        import json as _json

        pathlib.Path(trace_path).write_text(
            _json.dumps(service.spans.to_json(), indent=2) + "\n"
        )
        print(f"wrote stage trace to {trace_path}")


def _write_run_outputs(outdir: pathlib.Path, config, internet, history):
    """Publish a finished campaign's artefacts into ``outdir``.

    Shared by ``simulate``/``pipeline`` and ``scenario run`` so every
    run directory has the same layout: responsive.txt,
    aliased-prefixes.txt, report.txt, scenario.json, figures/,
    validation.txt and summary.json.
    """
    outdir.mkdir(parents=True, exist_ok=True)
    with open(outdir / "responsive.txt", "w", encoding="ascii") as handle:
        count = write_address_list(handle, history.final.cleaned_any())
    with open(outdir / "aliased-prefixes.txt", "w", encoding="ascii") as handle:
        aliased = write_aliased_prefixes(
            handle, (alias.prefix for alias in history.final.aliased_prefixes)
        )
    report = full_report(history)
    (outdir / "report.txt").write_text(report)
    with open(outdir / "scenario.json", "w", encoding="ascii") as handle:
        save_config(config, handle)
    rib = internet.routing.snapshot_at(max(history.retained))
    export_all_figures(outdir / "figures", history, rib)
    validation = validate_run(history)
    (outdir / "validation.txt").write_text(validation.render() + "\n")
    with open(outdir / "summary.json", "w", encoding="ascii") as handle:
        save_history_summary(history, handle)
    return count, aliased, validation


def cmd_simulate(args: argparse.Namespace) -> int:
    config, internet, history, service = _run_pipeline(args)
    outdir = pathlib.Path(args.output)
    count, aliased, validation = _write_run_outputs(
        outdir, config, internet, history
    )
    _write_observability(args, service)
    print(f"wrote {count} responsive addresses, {aliased} aliased prefixes, "
          f"report.txt, figures/, validation.txt and scenario.json to {outdir}")
    if not validation.passed:
        print(f"validation: {len(validation.failures)} check(s) failed")
        if args.strict:
            return 1
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    config, internet, history, service = _run_pipeline(args)
    seeds_day = max(history.retained)
    evaluation = evaluate_new_sources(
        internet, history, config,
        generators=default_generators(config),
        seeds_day=seeds_day,
        scan_days=[seeds_day + 1, seeds_day + 8],
    )
    outdir = pathlib.Path(args.output)
    outdir.mkdir(parents=True, exist_ok=True)
    report = full_report(history, evaluation)
    (outdir / "report.txt").write_text(report)
    with open(outdir / "new-responsive.txt", "w", encoding="ascii") as handle:
        count = write_address_list(handle, evaluation.combined_any())
    rib = internet.routing.snapshot_at(max(history.retained))
    export_all_figures(outdir / "figures", history, rib, evaluation)
    _write_observability(args, service)
    print(f"wrote report.txt, figures/ and {count} new responsive addresses "
          f"to {outdir}")
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    generator_cls = _GENERATORS[args.algorithm]
    generator = generator_cls(budget=args.budget)
    with open(args.seeds, "r", encoding="ascii") as handle:
        seeds = sorted(read_address_list(handle))
    if not seeds:
        print("seed file contains no addresses", file=sys.stderr)
        return 1
    result = generator.generate(seeds)
    with open(args.output, "w", encoding="ascii") as handle:
        count = write_address_list(handle, result.candidates)
    print(f"{generator.name}: {len(seeds)} seeds -> {count} candidates "
          f"({args.output})")
    return 0


def cmd_aggregate(args: argparse.Namespace) -> int:
    with open(args.prefixes, "r", encoding="ascii") as handle:
        prefixes = [
            IPv6Prefix.from_string(line.strip())
            for line in handle
            if line.strip() and not line.startswith("#")
        ]
    merged = merge_adjacent(prefixes)
    with open(args.output, "w", encoding="ascii") as handle:
        count = write_aliased_prefixes(handle, merged)
    print(f"aggregated {len(prefixes)} prefixes into {count}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    from repro.analysis.comparison import compare_summaries
    from repro.hitlist.history_io import load_history_summary

    with open(args.summary_a, "r", encoding="ascii") as handle:
        summary_a = load_history_summary(handle)
    with open(args.summary_b, "r", encoding="ascii") as handle:
        summary_b = load_history_summary(handle)
    comparison = compare_summaries(
        summary_a, summary_b,
        label_a=pathlib.Path(args.summary_a).parent.name or "A",
        label_b=pathlib.Path(args.summary_b).parent.name or "B",
    )
    print(comparison.render())
    return 0


def cmd_describe(args: argparse.Namespace) -> int:
    from repro.simnet.describe import describe_world

    config = _resolve_config(args)
    internet = build_internet(config)
    print(describe_world(internet).render())
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.obs.metrics import MetricsRegistry
    from repro.publish import aserve
    from repro.publish.server import PublishApp, make_server
    from repro.publish.store import SnapshotStore

    cache_bytes = int(args.cache_mb * 1024 * 1024)

    def announce(address) -> None:
        host, port = address[:2]
        if args.port_file:
            pathlib.Path(args.port_file).write_text(f"{port}\n")
        print(f"serving snapshot store {args.store} on http://{host}:{port}/ "
              f"(backend={args.backend}, rate={args.rate}/s, "
              f"burst={args.burst}, cache={args.cache_mb} MiB)", flush=True)

    if args.backend == "prefork":
        return aserve.run_prefork(
            aserve.default_app_factory(
                args.store, rate=args.rate, burst=args.burst,
                cache_bytes=cache_bytes,
            ),
            host=args.host, port=args.port, workers=args.workers,
            ready=announce,
        )

    app = PublishApp(
        SnapshotStore(args.store), metrics=MetricsRegistry(),
        rate=args.rate, burst=args.burst, cache_bytes=cache_bytes,
    )
    if args.backend == "asyncio":
        try:
            asyncio.run(aserve.serve_async(
                app, host=args.host, port=args.port, ready=announce,
            ))
        except KeyboardInterrupt:
            pass
        return 0

    server = make_server(app, host=args.host, port=args.port)
    announce(server.server_address)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0


def cmd_config(args: argparse.Namespace) -> int:
    config = _resolve_config(args)
    if args.output == "-":
        save_config(config, sys.stdout)
    else:
        with open(args.output, "w", encoding="ascii") as handle:
            save_config(config, handle)
        print(f"wrote {args.output}")
    return 0


# ---------------------------------------------------------------------------
# scenario subcommands

def _expand_scenario_ref(
    ref: str, scale: Optional[str], seed: Optional[int]
):
    """Expand a scenario reference: a library name or a file path.

    Anything that exists on disk (or looks like a path) is expanded as
    a file — ``.scn`` source or an already expanded artifact; otherwise
    the reference names a library scenario.
    """
    from repro.scenario import expand_library_scenario, expand_path

    path = pathlib.Path(ref)
    if path.is_file() or path.suffix in (".scn", ".json") or "/" in ref:
        return expand_path(str(path), scale=scale, seed=seed)
    return expand_library_scenario(ref, scale=scale, seed=seed)


def cmd_scenario_list(args: argparse.Namespace) -> int:
    from repro.scenario import list_scenarios, load_scenario_source
    from repro.scenario.sdl import parse as parse_scn

    names = list_scenarios()
    if not names:
        print("no library scenarios found")
        return 1
    for name in names:
        document = parse_scn(load_scenario_source(name))
        title = document.get("title", "")
        print(f"{name:24s} {title}")
    return 0


def cmd_scenario_show(args: argparse.Namespace) -> int:
    from repro.scenario import load_scenario_source

    try:
        source = load_scenario_source(args.scenario)
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 1
    sys.stdout.write(source)
    return 0


def cmd_scenario_expand(args: argparse.Namespace) -> int:
    from repro.scenario import artifact_to_json

    try:
        expanded = _expand_scenario_ref(args.scenario, args.scale, args.seed)
    except ValueError as error:
        print(f"scenario expansion failed: {error}", file=sys.stderr)
        return 1
    text = artifact_to_json(expanded)
    if args.output == "-":
        sys.stdout.write(text)
    else:
        pathlib.Path(args.output).write_text(text, encoding="ascii")
        print(f"wrote expanded scenario {expanded.name!r} to {args.output}")
    return 0


def cmd_scenario_run(args: argparse.Namespace) -> int:
    import json

    from repro.scenario import artifact_to_json, check_summary, render_results

    try:
        expanded = _expand_scenario_ref(args.scenario, args.scale, args.seed)
    except ValueError as error:
        print(f"scenario expansion failed: {error}", file=sys.stderr)
        return 1
    config = expanded.config
    internet = build_internet(config)
    service = HitlistService(
        internet, config,
        settings=expanded.settings(),
        fault_plan=expanded.fault_plan,
    )
    history = service.run(_scan_days(args, config, run=expanded.run))
    outdir = pathlib.Path(args.output)
    count, aliased, _ = _write_run_outputs(outdir, config, internet, history)
    # the exact artifact this run executed, --seed override included
    (outdir / "scenario-expanded.json").write_text(
        artifact_to_json(expanded), encoding="ascii"
    )
    with open(outdir / "summary.json", "r", encoding="ascii") as handle:
        summary = json.load(handle)
    print(f"scenario {expanded.name!r}: wrote {count} responsive addresses, "
          f"{aliased} aliased prefixes and scenario-expanded.json to {outdir}")
    results = check_summary(expanded.invariants, summary)
    print(render_results(results))
    return 0 if all(result.passed for result in results) else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cli",
        description="IPv6 Hitlist reproduction toolkit (IMC 2022)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_world_args(p):
        p.add_argument("--preset", choices=("small", "default"), default="small",
                       help="scenario scale (default: small)")
        p.add_argument("--config", help="JSON scenario file (overrides preset)")
        p.add_argument("--seed", type=int, help="override the scenario seed")
        p.add_argument("--days", type=int,
                       help="simulate only the first N days")
        p.add_argument("--interval", type=int,
                       help="fixed scan interval in days")
        p.add_argument("--faults",
                       help="JSON fault plan (outages, rate limits, loss "
                            "bursts, source failures) to inject")
        p.add_argument("--vantages", type=int, dest="vantages", default=None,
                       metavar="N",
                       help="simulated vantage points scanning as a fleet "
                            "(default: 1, the paper's single TUM vantage; "
                            ">1 shards targets across AS-diverse members "
                            "with quorum reconciliation)")
        p.add_argument("--quorum", choices=("strict", "majority", "any"),
                       default=None,
                       help="policy reconciling witness-target verdicts "
                            "that disagree across vantages "
                            "(default: majority)")
        p.add_argument("--vantage-faults", dest="vantage_faults",
                       metavar="SPEC",
                       help="extra per-vantage outage windows as "
                            "'vid:START-END[,vid:START-END...]' (e.g. "
                            "'vp1:10-20,vp2:14-18'), merged into the "
                            "fault plan")
        p.add_argument("--retry-attempts", type=int, dest="retry_attempts",
                       help="probe tries per target per scan (default: 1)")
        p.add_argument("--scan-workers", type=int, dest="scan_workers",
                       default=None, metavar="N",
                       help="scan-engine worker processes for the probe "
                            "stage (results are identical for any N)")
        p.add_argument("--scan-chunk-size", type=int, dest="scan_chunk_size",
                       default=None, metavar="TARGETS",
                       help="targets per scan-engine chunk (default: 4096; "
                            "scheduling knob only, results are identical "
                            "for any value)")
        p.add_argument("--scan-mode", choices=("full", "incremental"),
                       dest="scan_mode", default=None,
                       help="'incremental' probes only churned/new/degraded/"
                            "refresh-due prefixes plus confirmation samples "
                            "and carries stable prefixes forward "
                            "(default: full)")
        p.add_argument("--refresh-interval", type=int, dest="refresh_interval",
                       default=None, metavar="SCANS",
                       help="incremental mode: fully re-probe every stable "
                            "prefix at least every SCANS scans (default: 10)")
        p.add_argument("--sample-rate", type=float, dest="sample_rate",
                       default=None, metavar="RATE",
                       help="incremental mode: deterministic per-day "
                            "fraction of stable prefixes probed as "
                            "confirmation samples (default: 0.03125)")
        p.add_argument("--checkpoint-dir", dest="checkpoint_dir",
                       help="write per-scan state checkpoints to this "
                            "directory (created if missing)")
        p.add_argument("--checkpoint-every", type=int, dest="checkpoint_every",
                       help="checkpoint every N scans (default: 1 when "
                            "--checkpoint-dir is set)")
        p.add_argument("--resume", dest="resume",
                       help="resume an interrupted run from a checkpoint "
                            "file or directory (ignores world/schedule flags)")
        p.add_argument("--publish-dir", dest="publish_dir", metavar="DIR",
                       help="commit each scan's publication set to a "
                            "versioned snapshot store at DIR (serve it "
                            "with 'repro-cli serve')")
        p.add_argument("--metrics-json", dest="metrics_json", metavar="PATH",
                       help="write the run's metrics (deterministic view, "
                            "canonical JSON) to PATH")
        p.add_argument("--metrics-prom", dest="metrics_prom", metavar="PATH",
                       help="write the run's metrics (including wall-clock "
                            "timings) to PATH in Prometheus text format")
        p.add_argument("--trace", dest="trace", metavar="PATH",
                       help="write per-stage span timings to PATH as JSON")

    # `pipeline` is an alias of `simulate` — the scenario workflow's
    # natural verb (`scenario expand` output feeds `pipeline --config`)
    for verb in ("simulate", "pipeline"):
        p_sim = sub.add_parser(verb, help="run the hitlist pipeline")
        add_world_args(p_sim)
        p_sim.add_argument("--output", "-o", default="repro-out",
                           help="output directory")
        p_sim.add_argument("--strict", action="store_true",
                           help="exit non-zero when paper-shape validation "
                                "fails")
        p_sim.set_defaults(func=cmd_simulate)

    p_eval = sub.add_parser("evaluate",
                            help="run the pipeline plus the Sec. 6 evaluation")
    add_world_args(p_eval)
    p_eval.add_argument("--output", "-o", default="repro-out",
                        help="output directory")
    p_eval.set_defaults(func=cmd_evaluate)

    p_gen = sub.add_parser("generate", help="run a target generation algorithm")
    p_gen.add_argument("algorithm", choices=sorted(_GENERATORS))
    p_gen.add_argument("seeds", help="file with one IPv6 address per line")
    p_gen.add_argument("--budget", type=int, default=10_000)
    p_gen.add_argument("--output", "-o", default="candidates.txt")
    p_gen.set_defaults(func=cmd_generate)

    p_agg = sub.add_parser("aggregate", help="aggregate a prefix list")
    p_agg.add_argument("prefixes", help="file with one CIDR prefix per line")
    p_agg.add_argument("--output", "-o", default="aggregated.txt")
    p_agg.set_defaults(func=cmd_aggregate)

    p_cmp = sub.add_parser("compare", help="diff two runs' summary.json files")
    p_cmp.add_argument("summary_a")
    p_cmp.add_argument("summary_b")
    p_cmp.set_defaults(func=cmd_compare)

    p_desc = sub.add_parser("describe", help="summarize a built world")
    p_desc.add_argument("--preset", choices=("small", "default"), default="small")
    p_desc.add_argument("--config", help="JSON scenario file (overrides preset)")
    p_desc.add_argument("--seed", type=int)
    p_desc.set_defaults(func=cmd_describe)

    p_srv = sub.add_parser("serve",
                           help="serve a publication snapshot store over HTTP")
    p_srv.add_argument("--store", default="publish-store",
                       help="snapshot store directory (default: publish-store)")
    p_srv.add_argument("--host", default="127.0.0.1")
    p_srv.add_argument("--port", type=int, default=8064,
                       help="TCP port (0 binds an ephemeral port)")
    p_srv.add_argument("--backend", choices=("thread", "asyncio", "prefork"),
                       default="asyncio",
                       help="serving tier: 'asyncio' (default; keep-alive "
                            "event loop, sendfile), 'prefork' (N asyncio "
                            "workers sharing one socket), or 'thread' "
                            "(stdlib ThreadingHTTPServer smoke bridge)")
    p_srv.add_argument("--workers", type=int, default=2, metavar="N",
                       help="worker processes for --backend prefork "
                            "(default: 2)")
    p_srv.add_argument("--cache-mb", type=float, dest="cache_mb",
                       default=64.0, metavar="MIB",
                       help="hot-blob cache byte budget in MiB "
                            "(default: 64; 0 disables the cache)")
    p_srv.add_argument("--rate", type=float, default=50.0,
                       help="rate-limit tokens per second per client")
    p_srv.add_argument("--burst", type=float, default=100.0,
                       help="rate-limit burst size per client")
    p_srv.add_argument("--port-file", dest="port_file", metavar="PATH",
                       help="write the bound port number to PATH (useful "
                            "with --port 0)")
    p_srv.set_defaults(func=cmd_serve)

    p_scn = sub.add_parser(
        "scenario",
        help="work with scenario files (list/show/expand/run)",
    )
    scn_sub = p_scn.add_subparsers(dest="scenario_command", required=True)

    p_scn_list = scn_sub.add_parser(
        "list", help="list the named library scenarios")
    p_scn_list.set_defaults(func=cmd_scenario_list)

    p_scn_show = scn_sub.add_parser(
        "show", help="print a library scenario's source")
    p_scn_show.add_argument("scenario", help="library scenario name")
    p_scn_show.set_defaults(func=cmd_scenario_show)

    def add_scenario_args(p):
        p.add_argument("scenario",
                       help="library scenario name or path to a .scn "
                            "source / expanded artifact")
        p.add_argument("--scale", choices=("small", "default"),
                       help="override the scenario's base preset")
        p.add_argument("--seed", type=int,
                       help="post-expansion seed override (recorded in "
                            "the artifact's provenance)")

    p_scn_exp = scn_sub.add_parser(
        "expand",
        help="expand a scenario to its flat artifact (deterministic JSON)")
    add_scenario_args(p_scn_exp)
    p_scn_exp.add_argument("--output", "-o", default="-",
                           help="artifact path (default: stdout)")
    p_scn_exp.set_defaults(func=cmd_scenario_expand)

    p_scn_run = scn_sub.add_parser(
        "run",
        help="expand a scenario, run its campaign and check its invariants")
    add_scenario_args(p_scn_run)
    p_scn_run.add_argument("--output", "-o", default="repro-out",
                           help="output directory")
    p_scn_run.add_argument("--days", type=int,
                           help="override the scenario's run.days")
    p_scn_run.add_argument("--interval", type=int,
                           help="override the scenario's run.interval")
    p_scn_run.set_defaults(func=cmd_scenario_run)

    p_cfg = sub.add_parser("config", help="dump a scenario config as JSON")
    p_cfg.add_argument("--preset", choices=("small", "default"), default="small")
    p_cfg.add_argument("--config", help="round-trip an existing JSON config")
    p_cfg.add_argument("--seed", type=int)
    p_cfg.add_argument("--output", "-o", default="-")
    p_cfg.set_defaults(func=cmd_config)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
