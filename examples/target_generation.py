#!/usr/bin/env python3
"""Target generation shoot-out (paper Sec. 6).

Runs the hitlist for a while, then feeds its responsive addresses as
seeds to all five generation approaches — 6Tree, 6Graph, 6GAN, 6VecLM
and the paper's distance clustering — plus the passive sources and the
re-scan of 30-day-filtered addresses, and compares hit rates, AS biases
and overlap (Tables 3/4, Figs. 7/8).

Run:  python examples/target_generation.py
"""

from repro.analysis import ascii_table, si_format
from repro.analysis.formatting import ascii_matrix
from repro.analysis.distribution import as_distribution
from repro.hitlist import HitlistService
from repro.simnet import build_internet, small_config
from repro.tga import evaluate_new_sources
from repro.tga.evaluation import default_generators


def main() -> None:
    config = small_config(seed=5)
    internet = build_internet(config)
    service = HitlistService(internet, config)
    history = service.run(list(range(0, 240, 6)))
    seeds_day = max(history.retained)
    print(f"hitlist after the run: "
          f"{si_format(len(history.final.cleaned_any()))} responsive seeds\n")

    evaluation = evaluate_new_sources(
        internet, history, config,
        generators=default_generators(config),
        seeds_day=seeds_day,
        scan_days=[seeds_day + 2, seeds_day + 9, seeds_day + 16],
        loss_rate=0.01,
    )

    # --- Tables 3 + 4 ----------------------------------------------------
    rib = internet.routing.snapshot_at(seeds_day)
    rows = []
    for name, report in sorted(
        evaluation.reports.items(), key=lambda kv: -len(kv[1].responsive_any)
    ):
        distribution = as_distribution(report.responsive_any, rib, label=name)
        top = distribution.describe_top(internet.registry, count=1)
        top_text = f"{top[0][0]} ({top[0][2]:.0f}%)" if top else "-"
        rows.append([
            name,
            si_format(report.candidates),
            si_format(report.scanned),
            si_format(len(report.responsive_any)),
            f"{report.hit_rate:.1%}",
            top_text,
        ])
    print(ascii_table(
        ["source", "candidates", "scanned", "responsive", "hit rate", "top AS"],
        rows,
        title="New candidate sources (Tables 3/4)",
    ))

    combined = evaluation.combined_any()
    hitlist = history.final.cleaned_any()
    print(f"\nnew responsive addresses : {si_format(len(combined))}")
    print(f"current hitlist          : {si_format(len(hitlist))}")
    both = len(combined | hitlist)
    gain = 100.0 * len(combined - hitlist) / max(len(hitlist), 1)
    print(f"combined                 : {si_format(both)}  (+{gain:.0f} % — "
          f"paper: +174 %)")

    # --- Fig. 7: overlap --------------------------------------------------
    names, matrix = evaluation.overlap_matrix()
    print("\n" + ascii_matrix(
        names, matrix,
        title="Overlap between sources, % of row also found by column (Fig. 7)",
    ))


if __name__ == "__main__":
    main()
