#!/usr/bin/env python3
"""Service maintenance toolbox (paper Secs. 4.3, 5.3, 7).

The paper closes with maintenance recommendations for the IPv6 Hitlist
service.  This example exercises the implemented versions of all three:

1. input hygiene — drop stale EUI-64 rotations (Sec. 4.3);
2. fully-responsive-prefix representatives — keep one address per
   aliased prefix in the hitlist (Sec. 5.3);
3. data publication — the newline formats downstream studies consume.

Run:  python examples/service_maintenance.py
"""

import io

from repro.analysis import si_format
from repro.hitlist import HitlistService, alias_representatives
from repro.hitlist.export import publish, read_address_list
from repro.hitlist.hygiene import stale_eui64_rotations
from repro.protocols import Protocol
from repro.scan.zmap import ZMapScanner
from repro.simnet import build_internet, small_config


def main() -> None:
    config = small_config(seed=23)
    internet = build_internet(config)
    service = HitlistService(internet, config)
    history = service.run(list(range(0, 120, 6)))
    final_day = history.final.day

    # --- 1. input hygiene ------------------------------------------------
    # pretend every input address was last seen the day it could have been
    # discovered; the hygiene pass spots MACs recurring across prefixes
    sightings = [(address, final_day) for address in history.input_ever]
    report = stale_eui64_rotations(sightings)
    print(f"input hygiene: {si_format(report.scanned)} input addresses, "
          f"{si_format(report.eui64_addresses)} EUI-64, "
          f"{report.macs_with_rotations} MACs with rotations, "
          f"{si_format(len(report.stale))} stale rotations removable "
          f"({report.removable_share:.1%} of the input)")

    # --- 2. representatives for fully responsive prefixes -----------------
    representatives = alias_representatives(
        service.apd, known_addresses=history.input_ever
    )
    scanner = ZMapScanner(internet, loss_rate=0.0)
    result = scanner.scan(list(representatives.values()), Protocol.ICMP, final_day)
    print(f"\nrepresentatives: {len(representatives)} aliased prefixes get "
          f"one scan target each; {len(result.responders)} answered ICMP — "
          f"kept in the hitlist instead of silently dropping whole CDNs")

    # --- 3. publication ----------------------------------------------------
    streams = {
        "responsive": io.StringIO(),
        "ICMP": io.StringIO(),
        "UDP/53": io.StringIO(),
        "aliased": io.StringIO(),
    }
    written = publish(history, streams)
    print("\npublished files (lines):", written)
    round_trip = read_address_list(io.StringIO(streams["responsive"].getvalue()))
    assert round_trip == set(history.final.cleaned_any())
    print("round-trip parse of the responsive list: OK "
          f"({si_format(len(round_trip))} addresses)")


if __name__ == "__main__":
    main()
