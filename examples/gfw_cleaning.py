#!/usr/bin/env python3
"""GFW cleaning walkthrough (paper Sec. 4).

Shows the full injection story on a small world:

1. scan a dead Chinese address for a blocked domain and inspect the
   forged responses (A records / Teredo addresses from unrelated orgs);
2. run the pipeline across an injection era and watch the published
   UDP/53 count spike while the cleaned count stays flat;
3. deploy the GFW filter and watch the spike collapse;
4. print the per-AS impact table (the paper's Table 5).

Run:  python examples/gfw_cleaning.py
"""

from repro._util import day_to_date
from repro.analysis import ascii_table, si_format
from repro.analysis.formatting import percent
from repro.gfw.detector import classify_target
from repro.gfw.impact import impact_report
from repro.hitlist import HitlistService
from repro.hitlist.service import ServiceSettings
from repro.net.address import format_ipv6
from repro.net.teredo import decode_teredo, is_teredo
from repro.protocols import Protocol, RecordType
from repro.scan.zmap import ZMapScanner
from repro.simnet import build_internet, small_config


def inspect_single_injection(internet, day: int) -> None:
    """Step 1: what a forged response actually looks like."""
    cn_asn = 4134  # China Telecom Backbone
    prefix = internet.routing.base.prefixes_of(cn_asn)[0]
    dead_target = prefix.value | 0xDEAD_BEEF  # no host lives here

    scanner = ZMapScanner(internet, loss_rate=0.0)
    result = scanner.scan_udp53([dead_target], day, "www.google.com")
    responses = result.responses[dead_target]
    print(f"probe to dead address {format_ipv6(dead_target)} "
          f"-> {len(responses)} responses:")
    for response in responses:
        for answer in response.answers:
            if answer.rtype is RecordType.AAAA and is_teredo(answer.address):
                embedded = decode_teredo(answer.address).client_ipv4
                print(f"  AAAA {format_ipv6(answer.address)} "
                      f"(Teredo, embeds IPv4 {embedded >> 24 & 255}."
                      f"{embedded >> 16 & 255}.{embedded >> 8 & 255}."
                      f"{embedded & 255})")
            else:
                print(f"  {answer.rtype.value} answer")
    evidence = classify_target(responses)
    print("detector evidence:", {kind.value: n for kind, n in evidence.items()})

    # An unblocked domain gets silence — not even a DNS error.
    silent = scanner.scan_udp53([dead_target], day, "definitely-not-blocked.example")
    print(f"same address, unblocked domain -> "
          f"{len(silent.responses.get(dead_target, ()))} responses\n")


def run_pipeline_with_and_without_filter(internet, config) -> None:
    """Steps 2+3: the spike, then the filter deployment."""
    era = internet.gfw.eras[0]
    deploy_day = era.start_day + 49
    scan_days = list(range(era.start_day - 42, era.end_day + 21, 7))

    settings = ServiceSettings(gfw_filter_deploy_day=deploy_day)
    service = HitlistService(internet, config, settings=settings)
    history = service.run(scan_days)

    rows = []
    for snapshot in history.snapshots:
        marker = ""
        if snapshot.day == scan_days[0]:
            marker = "<- start"
        elif era.start_day <= snapshot.day < era.start_day + 7:
            marker = "<- injection era begins"
        elif deploy_day <= snapshot.day < deploy_day + 7:
            marker = "<- GFW filter deployed"
        rows.append([
            day_to_date(snapshot.day).isoformat(),
            si_format(snapshot.published_counts[Protocol.UDP53]),
            si_format(snapshot.cleaned_counts[Protocol.UDP53]),
            marker,
        ])
    print(ascii_table(
        ["scan", "UDP/53 published", "UDP/53 cleaned", ""],
        rows,
        title="Fig. 3 mechanism: published vs. cleaned DNS responsiveness",
    ))

    # Step 4: Table 5 — who the impacted addresses belong to.
    rib = internet.routing.snapshot_at(scan_days[-1])
    report = impact_report(history.gfw.ever_injected, rib, internet.registry)
    print(f"\n{si_format(report.total_addresses)} addresses ever impacted, "
          f"{report.total_asns} ASes")
    table_rows = [
        [row.name, si_format(row.addresses),
         percent(row.share_percent, 2), percent(row.cdf_percent, 2)]
        for row in report.top(10)
    ]
    print(ascii_table(["AS", "# addresses", "%", "CDF"], table_rows,
                      title="\nTable 5: top ASes impacted by the GFW"))


def main() -> None:
    config = small_config(seed=7)
    internet = build_internet(config)
    era_day = internet.gfw.eras[-1].start_day  # Teredo era
    inspect_single_injection(internet, era_day)
    run_pipeline_with_and_without_filter(internet, config)


if __name__ == "__main__":
    main()
