#!/usr/bin/env python3
"""Aliased ("fully responsive") prefix study (paper Sec. 5).

1. Run the multi-level aliased prefix detection over a small world.
2. Fingerprint the detected prefixes (TCP features + Too Big Trick) to
   separate true single-host aliases from CDN load-balancer fleets.
3. Count the domains that alias filtering would exclude (Sec. 5.2).

Run:  python examples/aliased_prefix_study.py
"""

from collections import Counter

from repro.analysis import (
    alias_size_histogram,
    aliased_prefix_protocols,
    domains_in_aliased_prefixes,
    fingerprint_survey,
    si_format,
    tbt_survey,
)
from repro.analysis.formatting import ascii_table
from repro.hitlist import HitlistService
from repro.protocols import ALL_PROTOCOLS
from repro.scan.tbt import TbtOutcome
from repro.simnet import build_internet, small_config


def main() -> None:
    config = small_config(seed=11)
    internet = build_internet(config)
    service = HitlistService(internet, config)
    # run past the Trafficforce-style event day so its /64s are detected
    event_day = config.trafficforce_event_day
    history = service.run(
        sorted({0, 7, 14, 21, event_day, event_day + 7, event_day + 14})
    )
    aliases = history.final.aliased_prefixes
    day = history.final.day
    rib = internet.routing.snapshot_at(day)

    # --- Fig. 5: size distribution -------------------------------------
    histogram = alias_size_histogram(aliases)
    print(ascii_table(
        ["prefix length", "count"],
        [[f"/{length}", count] for length, count in sorted(histogram.items())],
        title=f"{len(aliases)} detected aliased prefixes by length (Fig. 5)",
    ))
    slash64 = histogram.get(64, 0) / sum(histogram.values())
    print(f"/64 share: {slash64:.0%} (paper: >90 % incl. Trafficforce)\n")

    # --- Sec. 5.1: are they really single hosts? ------------------------
    fingerprints = fingerprint_survey(internet, aliases, day)
    print(f"TCP fingerprints: {fingerprints.fingerprintable} fingerprintable, "
          f"{fingerprints.uniform_share:.1%} fully uniform "
          f"(paper: 99.5 %)")

    tbt = tbt_survey(internet, aliases, day, rib)
    print(f"Too Big Trick: {tbt.measurable} measurable of {tbt.total}")
    for outcome in (TbtOutcome.FULL_SHARED, TbtOutcome.PARTIAL_SHARED,
                    TbtOutcome.NONE_SHARED):
        print(f"  {outcome.value:15s} {tbt.share(outcome):6.1%}")
    if tbt.partial_by_asn:
        names = Counter({
            internet.registry.name(asn): count
            for asn, count in tbt.partial_by_asn.items()
        })
        print(f"  partial sharing concentrates at: "
              f"{', '.join(name for name, _ in names.most_common(2))} "
              f"(paper: Akamai, Cloudflare)")

    # --- Table 2: protocols behind one random address per prefix --------
    outcome = aliased_prefix_protocols(internet, aliases, day)
    print(ascii_table(
        ["protocol", "# prefixes", "# ASes"],
        [[p.label, *outcome[p]] for p in ALL_PROTOCOLS],
        title="\nTable 2: responsiveness of aliased prefixes",
    ))

    # --- Sec. 5.2: the cost of dropping them all ------------------------
    report = domains_in_aliased_prefixes(internet.zone, aliases, rib)
    print(f"\n{si_format(report.domains_in_aliased)} of "
          f"{si_format(report.domains_total)} domains resolve into "
          f"{len(report.prefixes_hit)} aliased prefixes "
          f"({len(report.asns_hit)} ASes)")
    for top_list, hits in report.top_list_hits.items():
        print(f"  {top_list:9s} top list: {hits} listed domains affected")
    print("Dropping every aliased prefix would silently exclude all of them —")
    print("the paper's argument for renaming them 'fully responsive prefixes'.")


if __name__ == "__main__":
    main()
