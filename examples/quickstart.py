#!/usr/bin/env python3
"""Quickstart: build a small simulated IPv6 internet, run the hitlist
pipeline for half a year, and look at what it found.

Run:  python examples/quickstart.py
"""

from repro._util import day_to_date
from repro.analysis import si_format
from repro.hitlist import HitlistService
from repro.protocols import ALL_PROTOCOLS
from repro.simnet import build_internet, small_config


def main() -> None:
    # 1. A deterministic miniature internet: ASes, hosts, CDNs with fully
    #    responsive prefixes, rotating CPE fleets, the Great Firewall.
    config = small_config(seed=42)
    internet = build_internet(config)
    print(f"world: {len(internet.hosts)} hosts, "
          f"{len(internet.regions)} fully responsive regions, "
          f"{internet.zone.domain_count} domains")

    # 2. The IPv6 Hitlist service: input accumulation, blocklist, aliased
    #    prefix detection, 30-day filter, traceroutes, 5-protocol scans.
    service = HitlistService(internet, config)
    scan_days = list(range(0, 180, 6))  # one scan every 6 days
    history = service.run(scan_days)

    # 3. What happened?
    last = history.snapshots[-1]
    print(f"\nafter {len(scan_days)} scans "
          f"(through {day_to_date(last.day).isoformat()}):")
    print(f"  accumulated input : {si_format(last.input_total)} addresses")
    print(f"  scan pool         : {si_format(last.scan_target_count)} targets")
    print(f"  aliased prefixes  : {last.aliased_prefix_count}")
    print(f"  GFW-injected      : {si_format(history.gfw.impacted_count)} "
          f"addresses ever flagged")

    print("\nresponsive addresses by protocol (GFW-cleaned):")
    for protocol in ALL_PROTOCOLS:
        print(f"  {protocol.label:8s} {si_format(last.cleaned_counts[protocol]):>8}")
    print(f"  {'Total':8s} {si_format(last.cleaned_total):>8}")

    # 4. The same numbers before cleaning show the DNS injection spike.
    peak = max(s.published_counts[p] for s in history.snapshots
               for p in ALL_PROTOCOLS)
    print(f"\npublished (uncleaned) peak responsive count: {si_format(peak)}")
    print("That gap is the Great Firewall's DNS injection — the paper's")
    print("Sec. 4 finding, reproduced end to end.")


if __name__ == "__main__":
    main()
